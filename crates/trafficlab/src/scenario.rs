//! Named scenarios: graph family × traffic pattern × scheme set, and the
//! runner that turns one into a comparative report.
//!
//! A [`ScenarioSpec`] is a declarative list of [`CaseSpec`]s.  Each case
//! names a graph family ([`GraphSpec`]), a traffic pattern
//! ([`WorkloadSpec`]), and the scheme specs to drive over it — every axis a
//! spec value with a stable string codec, so a whole scenario is plain data:
//! it can be written as a TOML file (see [`crate::files`]), rendered back
//! out, and every report row names its full coordinates.  The runner
//! instantiates every applicable scheme, pushes the workload through the
//! sharded engine, and reports **measured** stretch/congestion next to the
//! scheme's **promised** `guaranteed_stretch` and `MemoryReport` — the
//! upper-bound side of the paper's Table 1, observed under load instead of
//! quoted.
//!
//! Reports render as an [`analysis::Table`] for the console (plus the
//! congestion-vs-stretch view of [`ScenarioReport::to_congestion_table`])
//! and as JSON for snapshots (`ScenarioReport::to_json`).

use crate::churn::{run_churn, ChurnError, ChurnRound, ChurnSpec};
use crate::engine::{run_workload, EngineConfig, WorkloadReport};
use crate::workload::{Workload, WorkloadSpec};
use analysis::report::{fmt_f64, json_escape, json_f64, Table};
use constraints::theorem1::build_worst_case_instance;
use graphkit::{generators, Graph, NodeId};
use routemodel::labeling::modular_complete_labeling;
use routemodel::StretchReport;
use routeschemes::landmark::{ClusterRule, LandmarkConfig, LandmarkCount};
use routeschemes::{GraphHints, SchemeSpec};
use speclang::SpecError;
use speclang::{
    push_nonzero_seed, render_spec, render_vocabulary, split_spec, ParamDoc, ParsedParams, SpecCtx,
};
use std::time::Instant;

/// A graph family, concretely parameterized.
///
/// Like scheme and workload specs, graph specs carry a stable string codec
/// (`grid?rows=32&cols=32`, `random?n=4096&seed=3162`) — the old ad-hoc
/// `label()` strings were display-only and could not be parsed back.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// `random_connected(n, deg / n, seed)` — the default workload graph.
    /// Generation is `O(n²)` Bernoulli trials: keep `n ≲ 10^4`.
    RandomConnected { n: usize, avg_deg: f64, seed: u64 },
    /// `random_regular_like(n, d, seed)` — `O(n · d)` generation, the
    /// family for the `n ≥ 10^5` sharded points.
    RandomRegular { n: usize, degree: usize, seed: u64 },
    /// `rows × cols` grid (dimension-order routing applies).
    Grid { rows: usize, cols: usize },
    /// The `dim`-dimensional hypercube (e-cube routing applies).
    Hypercube { dim: usize },
    /// `K_n` with the modular port labeling (the `O(log n)` scheme applies).
    CompleteModular { n: usize },
    /// A random tree (tree schemes are stretch-1 here).
    RandomTree { n: usize, seed: u64 },
    /// A Theorem 1 worst-case instance: the padded graph of constraints of a
    /// random representative matrix.
    Theorem1 { n: usize, theta: f64, seed: u64 },
    /// `barabasi_albert(n, m, seed)` — scale-free preferential attachment:
    /// the hub-and-spoke family that stresses landmark cluster sizes.
    Ba { n: usize, m: usize, seed: u64 },
    /// `powerlaw_configuration(n, gamma, seed)` — configuration-model
    /// power-law degrees with a `deg^-gamma` tail.
    PowerLaw { n: usize, exponent: f64, seed: u64 },
}

/// A graph spec materialized: the graph, registry hints, and (for Theorem 1
/// instances) the constrained/target vertex sets.
pub struct BuiltGraph {
    pub graph: Graph,
    pub hints: GraphHints,
    /// Constrained vertices of a Theorem 1 instance (empty otherwise).
    pub constrained: Vec<NodeId>,
    /// Target vertices of a Theorem 1 instance (empty otherwise).
    pub targets: Vec<NodeId>,
}

impl GraphSpec {
    /// Builds the graph (deterministic per spec).
    pub fn build(&self) -> BuiltGraph {
        let plain = |graph: Graph| BuiltGraph {
            graph,
            hints: GraphHints::none(),
            constrained: Vec::new(),
            targets: Vec::new(),
        };
        match *self {
            GraphSpec::RandomConnected { n, avg_deg, seed } => {
                plain(generators::random_connected(n, avg_deg / n as f64, seed))
            }
            GraphSpec::RandomRegular { n, degree, seed } => {
                plain(generators::random_regular_like(n, degree, seed))
            }
            GraphSpec::Grid { rows, cols } => BuiltGraph {
                graph: generators::grid(rows, cols),
                hints: GraphHints::grid(rows, cols),
                constrained: Vec::new(),
                targets: Vec::new(),
            },
            GraphSpec::Hypercube { dim } => BuiltGraph {
                graph: generators::hypercube(dim),
                // Pin hypercube detection: the generator vouches for the
                // dimension-port labeling, so e-cube skips its O(n log n)
                // structural scan.
                hints: GraphHints::hypercube(dim as u32),
                constrained: Vec::new(),
                targets: Vec::new(),
            },
            GraphSpec::CompleteModular { n } => plain(modular_complete_labeling(n)),
            GraphSpec::RandomTree { n, seed } => plain(generators::random_tree(n, seed)),
            GraphSpec::Ba { n, m, seed } => plain(generators::barabasi_albert(n, m, seed)),
            GraphSpec::PowerLaw { n, exponent, seed } => {
                plain(generators::powerlaw_configuration(n, exponent, seed))
            }
            GraphSpec::Theorem1 { n, theta, seed } => {
                let (cg, _params) = build_worst_case_instance(n, theta, seed);
                BuiltGraph {
                    graph: cg.graph,
                    hints: GraphHints::none(),
                    constrained: cg.constrained,
                    targets: cg.targets,
                }
            }
        }
    }

    /// Every graph family key, in vocabulary order.
    pub const ALL_KEYS: [&'static str; 9] = [
        "random",
        "regular",
        "ba",
        "powerlaw",
        "grid",
        "hypercube",
        "complete",
        "tree",
        "theorem1",
    ];

    /// The vertex count this spec will build, computable without building —
    /// what scenario loading validates workloads against (broadcast roots in
    /// range, at least two vertices) so a bad file fails typed instead of
    /// tripping an internal assert at run time.
    pub fn num_nodes(&self) -> usize {
        match *self {
            GraphSpec::RandomConnected { n, .. }
            | GraphSpec::RandomRegular { n, .. }
            | GraphSpec::CompleteModular { n }
            | GraphSpec::RandomTree { n, .. }
            | GraphSpec::Theorem1 { n, .. }
            | GraphSpec::Ba { n, .. }
            | GraphSpec::PowerLaw { n, .. } => n,
            GraphSpec::Grid { rows, cols } => rows.saturating_mul(cols),
            GraphSpec::Hypercube { dim } => 1usize << dim.min(usize::BITS as usize - 1),
        }
    }

    /// Short family key (`random`, `grid`, ...).
    pub fn key(&self) -> &'static str {
        match self {
            GraphSpec::RandomConnected { .. } => "random",
            GraphSpec::RandomRegular { .. } => "regular",
            GraphSpec::Grid { .. } => "grid",
            GraphSpec::Hypercube { .. } => "hypercube",
            GraphSpec::CompleteModular { .. } => "complete",
            GraphSpec::RandomTree { .. } => "tree",
            GraphSpec::Theorem1 { .. } => "theorem1",
            GraphSpec::Ba { .. } => "ba",
            GraphSpec::PowerLaw { .. } => "powerlaw",
        }
    }

    /// The parameters each graph family accepts — the single source of truth
    /// shared by the parser, the canonical formatter and
    /// [`GraphSpec::vocabulary`].
    pub fn param_docs(key: &str) -> &'static [ParamDoc] {
        const N: ParamDoc = ParamDoc {
            name: "n",
            values: "vertex count >= 2 (required)",
        };
        const SEED: ParamDoc = ParamDoc {
            name: "seed",
            values: "u64 generator seed (default 0; 0x hex ok)",
        };
        match key {
            "random" => &[
                N,
                ParamDoc {
                    name: "deg",
                    values: "average degree > 0 (default 8)",
                },
                SEED,
            ],
            "regular" => &[
                N,
                ParamDoc {
                    name: "d",
                    values: "degree >= 1 (default 8)",
                },
                SEED,
            ],
            "ba" => &[
                N,
                ParamDoc {
                    name: "m",
                    values: "attachment edges per arrival in 1..n (default 2)",
                },
                SEED,
            ],
            "powerlaw" => &[
                N,
                ParamDoc {
                    name: "gamma",
                    values: "degree exponent > 2 (default 2.5)",
                },
                SEED,
            ],
            "grid" => &[
                ParamDoc {
                    name: "rows",
                    values: "grid rows >= 1 (required)",
                },
                ParamDoc {
                    name: "cols",
                    values: "grid columns >= 1 (required)",
                },
            ],
            "hypercube" => &[ParamDoc {
                name: "dim",
                values: "hypercube dimension in 1..=30 (required)",
            }],
            "complete" => &[N],
            "tree" => &[N, SEED],
            "theorem1" => &[
                N,
                ParamDoc {
                    name: "theta",
                    values: "constrained fraction in (0, 1] (default 0.5)",
                },
                SEED,
            ],
            _ => &[],
        }
    }

    /// The full valid-spec vocabulary, one block per graph key.
    pub fn vocabulary() -> String {
        let entries: Vec<(&str, &[ParamDoc])> = Self::ALL_KEYS
            .into_iter()
            .map(|key| (key, Self::param_docs(key)))
            .collect();
        render_vocabulary(
            "valid graph specs (omitted params = defaults; 'n'/dims are required):",
            &entries,
        )
    }

    /// Parses a spec string (`key?name=value&...`).
    pub fn parse(spec: &str) -> Result<GraphSpec, SpecError> {
        let (key, query) = split_spec(spec);
        let key = Self::ALL_KEYS
            .into_iter()
            .find(|k| *k == key)
            .ok_or_else(|| SpecError::UnknownKey {
                domain: "graph",
                key: key.to_string(),
            })?;
        let ctx = SpecCtx::new("graph", key);
        let p = ParsedParams::new(ctx, spec, query, Self::param_docs(key))?;
        // A required size parameter; `expected` states the accepted range so
        // the error both diagnoses and teaches (matching `param_docs`).
        let size = |param: &'static str, min: usize, expected: &'static str| {
            let value = p.get(param).ok_or_else(|| ctx.missing(param))?;
            let v: usize = ctx.parse_int(param, value, expected)?;
            if v < min {
                return Err(ctx.invalid(param, value, expected));
            }
            Ok(v)
        };
        match key {
            "random" => {
                let avg_deg = match p.get("deg") {
                    Some(value) => {
                        let d = ctx.parse_f64("deg", value, "a float > 0")?;
                        // NaN must fail too, hence the negated form.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(d > 0.0) {
                            return Err(ctx.invalid("deg", value, "a float > 0"));
                        }
                        d
                    }
                    None => 8.0,
                };
                Ok(GraphSpec::RandomConnected {
                    n: size("n", 2, "an integer >= 2")?,
                    avg_deg,
                    seed: p.seed()?,
                })
            }
            "regular" => {
                let degree = match p.get("d") {
                    Some(value) => {
                        let d: usize = ctx.parse_int("d", value, "an integer >= 1")?;
                        if d == 0 {
                            return Err(ctx.invalid("d", value, "an integer >= 1"));
                        }
                        d
                    }
                    None => 8,
                };
                Ok(GraphSpec::RandomRegular {
                    n: size("n", 2, "an integer >= 2")?,
                    degree,
                    seed: p.seed()?,
                })
            }
            "ba" => {
                let n = size("n", 2, "an integer >= 2")?;
                let m = match p.get("m") {
                    Some(value) => {
                        let m: usize = ctx.parse_int("m", value, "an integer in 1..n")?;
                        if m == 0 || m >= n {
                            return Err(ctx.invalid("m", value, "an integer in 1..n"));
                        }
                        m
                    }
                    None => 2.min(n - 1),
                };
                Ok(GraphSpec::Ba {
                    n,
                    m,
                    seed: p.seed()?,
                })
            }
            "powerlaw" => {
                let exponent = match p.get("gamma") {
                    Some(value) => {
                        let g = ctx.parse_f64("gamma", value, "a float > 2")?;
                        // NaN must fail too, hence the negated form.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(g > 2.0) {
                            return Err(ctx.invalid("gamma", value, "a float > 2"));
                        }
                        g
                    }
                    None => 2.5,
                };
                Ok(GraphSpec::PowerLaw {
                    n: size("n", 2, "an integer >= 2")?,
                    exponent,
                    seed: p.seed()?,
                })
            }
            "grid" => Ok(GraphSpec::Grid {
                rows: size("rows", 1, "an integer >= 1")?,
                cols: size("cols", 1, "an integer >= 1")?,
            }),
            "hypercube" => {
                let dim = size("dim", 1, "a dimension in 1..=30")?;
                if dim > 30 {
                    return Err(ctx.invalid("dim", &dim.to_string(), "a dimension in 1..=30"));
                }
                Ok(GraphSpec::Hypercube { dim })
            }
            "complete" => Ok(GraphSpec::CompleteModular {
                n: size("n", 2, "an integer >= 2")?,
            }),
            "tree" => Ok(GraphSpec::RandomTree {
                n: size("n", 2, "an integer >= 2")?,
                seed: p.seed()?,
            }),
            "theorem1" => {
                let theta = match p.get("theta") {
                    Some(value) => {
                        let t = ctx.parse_f64("theta", value, "a float in (0, 1]")?;
                        if !(t > 0.0 && t <= 1.0) {
                            return Err(ctx.invalid("theta", value, "a float in (0, 1]"));
                        }
                        t
                    }
                    None => 0.5,
                };
                Ok(GraphSpec::Theorem1 {
                    n: size("n", 2, "an integer >= 2")?,
                    theta,
                    seed: p.seed()?,
                })
            }
            _ => unreachable!("key validated against ALL_KEYS"),
        }
    }

    /// The canonical string form (`key?name=value&...`, defaults omitted);
    /// `parse` of the result reproduces `self` exactly.  This replaces the
    /// old display-only `label()` in every report.
    pub fn spec_string(&self) -> String {
        let mut params: Vec<String> = Vec::new();
        match self {
            GraphSpec::RandomConnected { n, avg_deg, seed } => {
                params.push(format!("n={n}"));
                if *avg_deg != 8.0 {
                    params.push(format!("deg={avg_deg}"));
                }
                push_nonzero_seed(&mut params, *seed);
            }
            GraphSpec::RandomRegular { n, degree, seed } => {
                params.push(format!("n={n}"));
                if *degree != 8 {
                    params.push(format!("d={degree}"));
                }
                push_nonzero_seed(&mut params, *seed);
            }
            GraphSpec::Grid { rows, cols } => {
                params.push(format!("rows={rows}"));
                params.push(format!("cols={cols}"));
            }
            GraphSpec::Hypercube { dim } => params.push(format!("dim={dim}")),
            GraphSpec::CompleteModular { n } => params.push(format!("n={n}")),
            GraphSpec::RandomTree { n, seed } => {
                params.push(format!("n={n}"));
                push_nonzero_seed(&mut params, *seed);
            }
            GraphSpec::Theorem1 { n, theta, seed } => {
                params.push(format!("n={n}"));
                if *theta != 0.5 {
                    params.push(format!("theta={theta}"));
                }
                push_nonzero_seed(&mut params, *seed);
            }
            GraphSpec::Ba { n, m, seed } => {
                params.push(format!("n={n}"));
                if *m != 2 {
                    params.push(format!("m={m}"));
                }
                push_nonzero_seed(&mut params, *seed);
            }
            GraphSpec::PowerLaw { n, exponent, seed } => {
                params.push(format!("n={n}"));
                if *exponent != 2.5 {
                    params.push(format!("gamma={exponent}"));
                }
                push_nonzero_seed(&mut params, *seed);
            }
        }
        render_spec(self.key(), &params)
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec_string())
    }
}

/// At-or-above this vertex count, `stretch = auto` cases whose workload is
/// not all-pairs report a **sampled** stretch estimate instead of the
/// workload fold: a sparse workload at n ≥ 10^5 touches a vanishing,
/// pattern-biased fraction of pairs, so a dedicated uniform probe is the
/// honest stretch column.
pub const SAMPLED_STRETCH_THRESHOLD: usize = 100_000;

/// Pair count of the default sampled-stretch probe.
pub const SAMPLED_STRETCH_PAIRS: u64 = 16_384;

/// Seed of the `auto`-resolved sampled probe (explicit `sampled?seed=…`
/// overrides it).
const SAMPLED_STRETCH_SEED: u64 = 0x57A7;

/// The `stretch` axis of a case: how the report row's stretch columns are
/// measured.
///
/// The engine always folds stretch over the workload's own delivered
/// messages; `Sampled` adds a second, congestion-free engine pass over
/// deterministically sampled pairs and reports *that* fold instead — the
/// large-graph mode, where the workload's own pairs are too few and too
/// pattern-shaped to estimate the stretch factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StretchMode {
    /// `exact` below [`SAMPLED_STRETCH_THRESHOLD`] vertices (and always for
    /// all-pairs workloads, which cover every pair by construction);
    /// `sampled` at-or-above it.  The default.
    #[default]
    Auto,
    /// The workload run's own fold: exact over the pairs actually routed.
    Exact,
    /// A dedicated probe over `pairs` sampled source/destination pairs
    /// (`≈ √pairs` sources × `≈ √pairs` destinations each, deterministic
    /// per seed), run with congestion tracking off.
    Sampled { pairs: u64, seed: u64 },
}

impl StretchMode {
    /// Every stretch-mode key, in vocabulary order.
    pub const ALL_KEYS: [&'static str; 3] = ["auto", "exact", "sampled"];

    /// Short mode key (`auto`, `exact`, `sampled`).
    pub fn key(&self) -> &'static str {
        match self {
            StretchMode::Auto => "auto",
            StretchMode::Exact => "exact",
            StretchMode::Sampled { .. } => "sampled",
        }
    }

    /// The parameters each mode accepts — shared by parser, formatter and
    /// [`StretchMode::vocabulary`].
    pub fn param_docs(key: &str) -> &'static [ParamDoc] {
        match key {
            "sampled" => &[
                ParamDoc {
                    name: "pairs",
                    values: "sampled pair count >= 1 (default 16384)",
                },
                ParamDoc {
                    name: "seed",
                    values: "u64 sample seed (default 0; 0x hex ok)",
                },
            ],
            _ => &[],
        }
    }

    /// The full valid-spec vocabulary, one block per mode key.
    pub fn vocabulary() -> String {
        let entries: Vec<(&str, &[ParamDoc])> = Self::ALL_KEYS
            .into_iter()
            .map(|key| (key, Self::param_docs(key)))
            .collect();
        render_vocabulary("valid stretch modes (omitted params = defaults):", &entries)
    }

    /// Parses a spec string (`exact`, `sampled?pairs=65536&seed=7`).
    pub fn parse(spec: &str) -> Result<StretchMode, SpecError> {
        let (key, query) = split_spec(spec);
        let key = Self::ALL_KEYS
            .into_iter()
            .find(|k| *k == key)
            .ok_or_else(|| SpecError::UnknownKey {
                domain: "stretch",
                key: key.to_string(),
            })?;
        let ctx = SpecCtx::new("stretch", key);
        let p = ParsedParams::new(ctx, spec, query, Self::param_docs(key))?;
        match key {
            "auto" => Ok(StretchMode::Auto),
            "exact" => Ok(StretchMode::Exact),
            "sampled" => {
                let pairs = match p.get("pairs") {
                    Some(value) => {
                        let k: u64 = ctx.parse_int("pairs", value, "an integer >= 1")?;
                        if k == 0 {
                            return Err(ctx.invalid("pairs", value, "an integer >= 1"));
                        }
                        k
                    }
                    None => SAMPLED_STRETCH_PAIRS,
                };
                Ok(StretchMode::Sampled {
                    pairs,
                    seed: p.seed()?,
                })
            }
            _ => unreachable!("key validated against ALL_KEYS"),
        }
    }

    /// The canonical string form; `parse` of the result reproduces `self`.
    pub fn spec_string(&self) -> String {
        let mut params: Vec<String> = Vec::new();
        if let StretchMode::Sampled { pairs, seed } = self {
            if *pairs != SAMPLED_STRETCH_PAIRS {
                params.push(format!("pairs={pairs}"));
            }
            push_nonzero_seed(&mut params, *seed);
        }
        render_spec(self.key(), &params)
    }

    /// The mode a case actually runs: `Auto` resolves against the case's
    /// size and workload; the explicit modes are already concrete.
    pub fn resolve(self, n: usize, workload: &WorkloadSpec) -> StretchMode {
        match self {
            StretchMode::Auto => {
                if n >= SAMPLED_STRETCH_THRESHOLD && !matches!(workload, WorkloadSpec::AllPairs) {
                    StretchMode::Sampled {
                        pairs: SAMPLED_STRETCH_PAIRS,
                        seed: SAMPLED_STRETCH_SEED,
                    }
                } else {
                    StretchMode::Exact
                }
            }
            mode => mode,
        }
    }
}

impl std::fmt::Display for StretchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec_string())
    }
}

/// One graph × workload × scheme-set cell of a scenario.
///
/// Schemes are full [`SchemeSpec`]s, not bare kinds: a case can drive the
/// same family at several parameter points (the `landmark-sweep` scenario is
/// one case whose scheme list walks `k`).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    pub graph: GraphSpec,
    pub workload: WorkloadSpec,
    pub schemes: Vec<SchemeSpec>,
    /// Engine block size override (`0` = engine default).
    pub block_rows: usize,
    /// Optional churn axis: after the healthy baseline run, drive each
    /// scheme through fail → measure → repair → measure rounds
    /// (see [`crate::churn`]).
    pub churn: Option<ChurnSpec>,
    /// How the report row's stretch is measured (see [`StretchMode`]).
    pub stretch: StretchMode,
    /// Statically verify every built scheme with `routecheck` before
    /// measuring: unsound instances become typed skip notes instead of
    /// polluting the measurement columns.
    pub verify: bool,
}

/// A named, reproducible experiment — plain declarative data: every axis is
/// a spec value with a string codec, so the whole scenario loads from (and
/// renders back to) a TOML scenario file (see [`crate::files`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    pub name: String,
    pub description: String,
    pub cases: Vec<CaseSpec>,
}

/// Pre-spec-language names, kept so existing call sites read naturally.
pub type Case = CaseSpec;
/// See [`Case`].
pub type Scenario = ScenarioSpec;

/// The landmark counts the `landmark-sweep` scenario (and its bench twin)
/// walks at n = 4096: one decade upward from the measured memory-optimal
/// point.  On this graph the clusters average `≈ 3n/k`, which puts the
/// minimum of `k + |S|` near `k = √(3n) ≈ 110`, not at `⌈√n⌉ = 64`; below
/// that the cluster term dominates and per-router bits *fall* as `k` grows,
/// from there up the landmark table dominates, so the swept curve is
/// monotone — more landmarks, more bits, shorter detours.
pub const LANDMARK_SWEEP_KS: [usize; 5] = [128, 256, 512, 1024, 1280];

/// A landmark spec with an explicit landmark count (default rule and seed).
pub fn landmark_with_k(k: usize) -> SchemeSpec {
    SchemeSpec::Landmark(LandmarkConfig {
        landmarks: LandmarkCount::Count(k),
        ..LandmarkConfig::default()
    })
}

/// The strict-cluster landmark spec (`landmark?clusters=strict`).
pub fn landmark_strict() -> SchemeSpec {
    SchemeSpec::Landmark(LandmarkConfig {
        cluster_rule: ClusterRule::Strict,
        ..LandmarkConfig::default()
    })
}

/// The built-in scenario book — loaded from the TOML files under
/// `examples/scenarios/` (embedded at compile time; see [`crate::files`]),
/// so the book is data in the same format `trafficlab --file` accepts.
///
/// * `smoke` — n = 1024 graphs covering **every** registry scheme; quick.
/// * `uniform-1m` — 10^6 uniform messages on an n = 4096 random graph.
/// * `sharded-130k` — an n = 131072 graph swept block-by-block (sampled
///   sources); the point that cannot exist with a dense matrix (64 GiB).
/// * `landmark-130k` — the stretch `< 3` scheme at n = 131072: landmark
///   routing built sparsely (no dense matrix), under both cluster rules,
///   next to the spanning tree.
/// * `landmark-sweep` — the measured bits-vs-stretch curve: one n = 4096
///   graph, `k` swept over [`LANDMARK_SWEEP_KS`] (Table 1's trade-off rows
///   as data, not quotes).
/// * `zipf-hotspot` — skewed destinations vs. uniform, congestion focus.
/// * `broadcast` — one-to-all tree traffic.
/// * `permutation-cube` — permutation rounds on the hypercube.
/// * `theorem1` — constrained-vertex probes on worst-case instances, at
///   n = 1024 under every universal scheme and at n = 16384 under the
///   near-linear ones; the strict cluster rule rides along there because
///   tiny-diameter instances are exactly where it beats the inclusive rule.
/// * `adversarial` — the `bisection` and `worstperm` patterns on the grid
///   and the hypercube; read with `--report congestion` for the
///   congestion-vs-stretch trade-off across schemes.
pub fn named_scenarios() -> Vec<Scenario> {
    crate::files::builtin_scenarios()
}

/// Looks a scenario up by name (ASCII case-insensitive, so a shouted
/// `--scenario SMOKE` still runs).
pub fn find_scenario(name: &str) -> Option<Scenario> {
    named_scenarios()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Levenshtein distance, for near-miss scenario suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Built-in scenario names close to a typo'd `name`, best match first: small
/// edit distance, or a substring hit (`landmark` suggests both landmark
/// scenarios).  Empty when nothing is plausibly meant.
pub fn suggest_scenarios(name: &str) -> Vec<String> {
    let needle = name.to_ascii_lowercase();
    let mut scored: Vec<(usize, String)> = named_scenarios()
        .into_iter()
        .filter_map(|s| {
            let d = edit_distance(&needle, &s.name);
            if d <= 3 || s.name.contains(&needle) || needle.contains(&s.name) {
                Some((d, s.name))
            } else {
                None
            }
        })
        .collect();
    scored.sort();
    scored.into_iter().map(|(_, n)| n).take(3).collect()
}

/// One (case, scheme) measurement.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The graph's canonical spec string (`random?n=1024&seed=3162`).
    pub graph_label: String,
    pub n: usize,
    pub edges: usize,
    /// The workload family key (`uniform`, `zipf`, ...).
    pub workload_key: String,
    /// The workload's full canonical spec string
    /// (`uniform?messages=20000&seed=1`) — like scheme specs, report rows
    /// carry the whole pattern, not a lossy label, so two cases differing
    /// only in seed or volume stay distinguishable.
    pub workload_spec: String,
    /// The family key (`landmark`, `tree`, ...).
    pub scheme_key: String,
    /// The full canonical spec string (`landmark?k=64&clusters=strict`); the
    /// bare key when every parameter is at its default.  Every report row
    /// carries it so a sweep's points stay distinguishable.
    pub scheme_spec: String,
    pub scheme_name: String,
    /// The scheme's local (max per router) memory, in bits.
    pub local_bits: u64,
    /// The scheme's global (sum) memory, in bits.
    pub global_bits: u64,
    /// The stretch bound the scheme promises (`None` = no guarantee).
    pub guaranteed_stretch: Option<f64>,
    /// Whether the measured max stretch respects the promise (`None` when no
    /// promise was made).  Judged against [`CaseResult::stretch`].
    pub within_guarantee: Option<bool>,
    /// The stretch shown in report rows: the workload run's own fold in
    /// exact mode, the dedicated sampled probe's fold otherwise.
    pub stretch: StretchReport,
    /// How [`CaseResult::stretch`] was measured — `exact`, or the resolved
    /// sampled spec (`sampled?pairs=16384&seed=…`); every report row
    /// carries the note so an estimate can never pass as exact.
    pub stretch_mode: String,
    pub report: WorkloadReport,
    /// Wall-clock seconds to build the scheme instance.
    pub build_secs: f64,
    /// Engine-measured seconds of the workload run (`report.run_secs`).
    pub run_secs: f64,
    /// Delivered messages per second, measured inside the engine.
    pub messages_per_sec: f64,
}

/// The resilience record of one (case, scheme) cell under churn: the
/// per-round fail → measure → repair → measure results.
#[derive(Debug, Clone)]
pub struct ResilienceResult {
    /// The case's graph spec string.
    pub graph_label: String,
    /// The case's workload spec string.
    pub workload_spec: String,
    /// The scheme spec string.
    pub scheme_spec: String,
    /// The churn spec string (`churn?kill=0.01&rounds=8`).
    pub churn_spec: String,
    /// One record per completed round.
    pub rounds: Vec<ChurnRound>,
    /// Why the rounds stopped early (disconnection), if they did.
    pub halted: Option<String>,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    pub scenario: String,
    pub results: Vec<CaseResult>,
    /// Churn rows: one entry per (case, scheme) cell with a churn axis.
    pub resilience: Vec<ResilienceResult>,
    /// Routing-model failures (loops, wrong deliveries, ...) — a non-empty
    /// list means a scheme is broken, and the CLI exits non-zero on it.
    pub errors: Vec<String>,
    /// Benign notes: cells skipped because the scheme does not apply to the
    /// case's graph.
    pub skipped: Vec<String>,
}

/// Above this vertex count, schemes whose construction is quadratic (see
/// [`SchemeKind::scales_to_large_graphs`]) are skipped with a note instead
/// of being built.
pub const LARGE_GRAPH_THRESHOLD: usize = 50_000;

/// Runs every (case, scheme) cell of a scenario.
///
/// Inapplicable schemes — and schemes whose construction cannot scale to the
/// case's graph — become [`ScenarioReport::skipped`] notes; routing failures
/// become [`ScenarioReport::errors`] entries instead of aborting the sweep.
pub fn run_scenario(scenario: &Scenario, threads: usize) -> ScenarioReport {
    let mut out = ScenarioReport {
        scenario: scenario.name.clone(),
        ..Default::default()
    };
    for case in &scenario.cases {
        // Scenario files make bad workload/graph combinations user input:
        // reject them as errors here, before compile's internal asserts
        // (programmer-facing panics) can fire.
        if let Err(msg) = case.workload.validate(case.graph.num_nodes()) {
            out.errors.push(format!(
                "{}: workload '{}' invalid: {msg}",
                case.graph.spec_string(),
                case.workload.spec_string()
            ));
            continue;
        }
        let built = case.graph.build();
        let n = built.graph.num_nodes();
        let graph_label = case.graph.spec_string();
        let plan = match &case.workload {
            WorkloadSpec::ConstrainedProbes => {
                // The probe pairs live on the built instance, not the bare
                // vertex count; on a graph without planted constraints the
                // case is a benign skip, not an empty run.
                if built.constrained.is_empty() || built.targets.is_empty() {
                    out.skipped.push(format!(
                        "{graph_label}: workload 'constrained-probes' needs a theorem1 graph"
                    ));
                    continue;
                }
                let mut pairs = Vec::with_capacity(built.constrained.len() * built.targets.len());
                for &a in &built.constrained {
                    for &b in &built.targets {
                        pairs.push((a, b));
                    }
                }
                crate::workload::WorkloadPlan::from_pairs(n, pairs)
            }
            w => w.compile(n),
        };
        let cfg = EngineConfig {
            threads,
            block_rows: case.block_rows,
            track_congestion: true,
        };
        let resolved_stretch = case.stretch.resolve(n, &case.workload);
        for spec in &case.schemes {
            // Specs whose construction is quadratic at this size — an O(n²)
            // family, or a near-linear family driven with quadratic
            // parameters (landmark k ≫ √n) — would hang (or OOM) a large
            // case long before the engine runs; skip them up front.
            if n >= LARGE_GRAPH_THRESHOLD && !spec.scales_to_large_graphs(n) {
                out.skipped.push(format!(
                    "{graph_label}: scheme '{spec}' skipped (construction cannot scale to n = {n})"
                ));
                continue;
            }
            let t0 = Instant::now();
            let mut instance = match spec.build(&built.graph, &built.hints) {
                Ok(instance) => instance,
                Err(e) => {
                    // A typed build failure is a benign skip with its reason
                    // spelled out, not an aborted sweep.
                    out.skipped
                        .push(format!("{graph_label}: scheme '{spec}' skipped: {e}"));
                    continue;
                }
            };
            let build_secs = t0.elapsed().as_secs_f64();
            // The verify axis: prove the instance sound (structural audits +
            // all-pairs static sweep) before spending engine time on it.  An
            // unsound scheme is a typed skip, not a measurement row.
            if case.verify {
                let soundness = routecheck::verify_instance(
                    &built.graph,
                    None,
                    &instance,
                    &graph_label,
                    threads,
                );
                if soundness.verdict != routecheck::Verdict::Sound {
                    let why = soundness
                        .failure_note()
                        .unwrap_or_else(|| "unsound".to_string());
                    out.skipped.push(format!(
                        "{graph_label}: scheme '{spec}' skipped: static verification failed \
                         [{}]: {why}",
                        soundness.verdict.code()
                    ));
                    continue;
                }
            }
            match run_workload(&built.graph, instance.routing.as_ref(), &plan, &cfg) {
                Ok(report) => {
                    // In sampled mode the displayed stretch comes from a
                    // second, congestion-free pass over uniformly sampled
                    // pairs — the workload's own pairs are too few (and too
                    // pattern-shaped) to estimate the stretch factor at
                    // n ≥ 10^5.
                    let (stretch, stretch_mode) = match resolved_stretch {
                        StretchMode::Sampled { pairs, seed } => {
                            let sources = ((pairs as f64).sqrt().ceil() as usize).clamp(1, n);
                            let probe = Workload::SampledSources {
                                sources,
                                dests_per_source: (pairs as usize).div_ceil(sources),
                                seed,
                            }
                            .compile(n);
                            let probe_cfg = EngineConfig {
                                threads,
                                block_rows: case.block_rows,
                                track_congestion: false,
                            };
                            match run_workload(
                                &built.graph,
                                instance.routing.as_ref(),
                                &probe,
                                &probe_cfg,
                            ) {
                                Ok(p) => (p.stretch, resolved_stretch.spec_string()),
                                Err(e) => {
                                    // The probe hit the model violation the
                                    // main run dodged: surface it, fall back
                                    // to the workload fold.
                                    out.errors.push(format!(
                                        "{graph_label}: scheme '{spec}' failed its \
                                         sampled-stretch probe: {e}"
                                    ));
                                    (report.stretch.clone(), "exact".to_string())
                                }
                            }
                        }
                        _ => (report.stretch.clone(), "exact".to_string()),
                    };
                    let within_guarantee = instance
                        .guaranteed_stretch
                        .map(|bound| stretch.max_stretch <= bound + 1e-9);
                    out.results.push(CaseResult {
                        graph_label: graph_label.clone(),
                        n,
                        edges: built.graph.num_edges(),
                        workload_key: case.workload.key().to_string(),
                        workload_spec: case.workload.spec_string(),
                        scheme_key: spec.key().to_string(),
                        scheme_spec: spec.spec_string(),
                        scheme_name: instance.routing.name().to_string(),
                        local_bits: instance.memory.local(),
                        global_bits: instance.memory.global(),
                        guaranteed_stretch: instance.guaranteed_stretch,
                        within_guarantee,
                        stretch,
                        stretch_mode,
                        messages_per_sec: report.messages_per_sec(),
                        run_secs: report.run_secs,
                        report,
                        build_secs,
                    });
                }
                Err(e) => {
                    out.errors
                        .push(format!("{graph_label}: scheme '{spec}' failed: {e}"));
                    continue;
                }
            }
            // The churn axis rides after the healthy baseline: the instance
            // built above is failed, measured, repaired in place, and
            // measured again, round by round.
            if let Some(churn) = &case.churn {
                match run_churn(&built.graph, &mut instance, &plan, &cfg, churn) {
                    Ok(run) => out.resilience.push(ResilienceResult {
                        graph_label: graph_label.clone(),
                        workload_spec: case.workload.spec_string(),
                        scheme_spec: spec.spec_string(),
                        churn_spec: churn.spec_string(),
                        rounds: run.rounds,
                        halted: run.halted,
                    }),
                    // A scheme without a repair strategy is a benign skip of
                    // the churn axis, not a broken scenario.
                    Err(ChurnError::Unsupported(e)) => out.skipped.push(format!(
                        "{graph_label}: scheme '{spec}' skipped for churn: {e}"
                    )),
                    Err(e) => out.errors.push(format!(
                        "{graph_label}: scheme '{spec}' failed under '{churn}': {e}",
                        churn = churn.spec_string()
                    )),
                }
            }
        }
    }
    out
}

impl ScenarioReport {
    /// Console rendering: one row per (case, scheme).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "graph",
            "workload",
            "scheme",
            "msgs",
            "max_stretch",
            "avg_stretch",
            "guarantee",
            "max_arc_load",
            "p99_len",
            "local_bits",
            "narrow/blocks",
            "msgs/s",
            "stretch_mode",
        ]);
        for r in &self.results {
            t.push_row([
                r.graph_label.clone(),
                // Full specs: bare key for defaults, parameters otherwise.
                r.workload_spec.clone(),
                r.scheme_spec.clone(),
                r.report.routed_messages.to_string(),
                fmt_f64(r.stretch.max_stretch, 3),
                fmt_f64(r.stretch.avg_stretch, 3),
                match (r.guaranteed_stretch, r.within_guarantee) {
                    (Some(b), Some(true)) => format!("<={} ok", fmt_f64(b, 1)),
                    (Some(b), Some(false)) => format!("<={} VIOLATED", fmt_f64(b, 1)),
                    _ => "none".to_string(),
                },
                r.report
                    .congestion
                    .as_ref()
                    .map_or("-".into(), |c| c.max_arc_load.to_string()),
                r.report
                    .lengths
                    .quantile(0.99)
                    .map_or("-".into(), |l| l.to_string()),
                r.local_bits.to_string(),
                format!("{}/{}", r.report.narrow_blocks, r.report.blocks),
                format!("{:.0}", r.messages_per_sec),
                r.stretch_mode.clone(),
            ]);
        }
        t
    }

    /// The congestion-vs-stretch trade-off view (`--report congestion`): one
    /// row per (case, scheme), load metrics next to the stretch they buy.
    /// `imbalance` is `max_arc_load / mean_arc_load` — how far the hottest
    /// arc sits above a perfectly spread load; `total_hops` equals the sum
    /// of all route lengths, so lower-stretch schemes push fewer hops
    /// through the network even when their hottest arc is hotter.
    pub fn to_congestion_table(&self) -> Table {
        let mut t = Table::new([
            "graph",
            "workload",
            "scheme",
            "msgs",
            "max_stretch",
            "avg_stretch",
            "total_hops",
            "max_arc_load",
            "mean_arc_load",
            "imbalance",
            "loaded_arcs",
            "local_bits",
        ]);
        for r in &self.results {
            let Some(c) = r.report.congestion.as_ref() else {
                continue;
            };
            let imbalance = if c.mean_arc_load > 0.0 {
                fmt_f64(c.max_arc_load as f64 / c.mean_arc_load, 2)
            } else {
                "-".into()
            };
            t.push_row([
                r.graph_label.clone(),
                r.workload_spec.clone(),
                r.scheme_spec.clone(),
                r.report.routed_messages.to_string(),
                fmt_f64(r.stretch.max_stretch, 3),
                fmt_f64(r.stretch.avg_stretch, 3),
                c.total_load.to_string(),
                c.max_arc_load.to_string(),
                fmt_f64(c.mean_arc_load, 2),
                imbalance,
                format!("{}/{}", c.loaded_arcs, c.arcs),
                r.local_bits.to_string(),
            ]);
        }
        t
    }

    /// The resilience view (`--report resilience`): one row per churn
    /// round of every (case, scheme) cell that ran the churn axis —
    /// delivery rate and stretch while degraded, the repair's cost, and the
    /// same measurements after repair.  `repair` is `incr` when the scheme
    /// patched itself in place and `full` when it fell back to a rebuild.
    pub fn to_resilience_table(&self) -> Table {
        let mut t = Table::new([
            "graph",
            "scheme",
            "churn",
            "round",
            "dead",
            "deg_delivery",
            "deg_stretch",
            "repair",
            "touched",
            "repair_s",
            "rec_delivery",
            "rec_stretch",
        ]);
        for r in &self.resilience {
            for round in &r.rounds {
                t.push_row([
                    r.graph_label.clone(),
                    r.scheme_spec.clone(),
                    r.churn_spec.clone(),
                    round.round.to_string(),
                    round.dead_links.to_string(),
                    fmt_f64(round.degraded.delivery_rate(), 4),
                    fmt_f64(round.degraded_max_stretch, 3),
                    if round.repair.full_rebuild {
                        "full".into()
                    } else {
                        "incr".into()
                    },
                    round.repair.vertices_touched.to_string(),
                    fmt_f64(round.repair.seconds, 4),
                    fmt_f64(round.recovered.delivery_rate(), 4),
                    fmt_f64(round.recovered_max_stretch, 3),
                ]);
            }
        }
        t
    }

    /// JSON rendering for snapshots and CI artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            json_escape(&self.scenario)
        ));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let cong = r.report.congestion.as_ref();
            out.push_str(&format!(
                concat!(
                    "    {{\"graph\": \"{}\", \"n\": {}, \"edges\": {}, ",
                    "\"workload\": \"{}\", \"workload_spec\": \"{}\", ",
                    "\"scheme\": \"{}\", \"spec\": \"{}\", ",
                    "\"scheme_name\": \"{}\", ",
                    "\"messages\": {}, \"skipped_unreachable\": {}, ",
                    "\"max_stretch\": {}, \"avg_stretch\": {}, \"max_route_len\": {}, ",
                    "\"stretch_mode\": \"{}\", ",
                    "\"guaranteed_stretch\": {}, \"within_guarantee\": {}, ",
                    "\"max_arc_load\": {}, \"mean_arc_load\": {}, ",
                    "\"local_bits\": {}, \"global_bits\": {}, ",
                    "\"blocks\": {}, \"narrow_blocks\": {}, \"peak_tracked_bytes\": {}, ",
                    "\"build_secs\": {}, \"run_secs\": {}, \"messages_per_sec\": {}}}{}\n"
                ),
                json_escape(&r.graph_label),
                r.n,
                r.edges,
                json_escape(&r.workload_key),
                json_escape(&r.workload_spec),
                json_escape(&r.scheme_key),
                json_escape(&r.scheme_spec),
                json_escape(&r.scheme_name),
                r.report.routed_messages,
                r.report.skipped_unreachable,
                json_f64(r.stretch.max_stretch),
                json_f64(r.stretch.avg_stretch),
                r.stretch.max_route_len,
                json_escape(&r.stretch_mode),
                r.guaranteed_stretch.map_or("null".into(), json_f64),
                r.within_guarantee
                    .map_or("null".to_string(), |b| b.to_string()),
                cong.map_or("null".into(), |c| c.max_arc_load.to_string()),
                cong.map_or("null".into(), |c| json_f64(c.mean_arc_load)),
                r.local_bits,
                r.global_bits,
                r.report.blocks,
                r.report.narrow_blocks,
                r.report.peak_tracked_bytes,
                json_f64(r.build_secs),
                json_f64(r.run_secs),
                json_f64(r.messages_per_sec),
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"resilience\": [\n");
        for (i, r) in self.resilience.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"graph\": \"{}\", \"workload_spec\": \"{}\", ",
                    "\"scheme\": \"{}\", \"churn\": \"{}\", \"halted\": {}, ",
                    "\"rounds\": [\n"
                ),
                json_escape(&r.graph_label),
                json_escape(&r.workload_spec),
                json_escape(&r.scheme_spec),
                json_escape(&r.churn_spec),
                r.halted
                    .as_ref()
                    .map_or("null".to_string(), |h| format!("\"{}\"", json_escape(h))),
            ));
            for (j, round) in r.rounds.iter().enumerate() {
                out.push_str(&format!(
                    concat!(
                        "      {{\"round\": {}, \"dead_links\": {}, ",
                        "\"degraded_delivery\": {}, \"degraded_delivered\": {}, ",
                        "\"degraded_link_down\": {}, \"degraded_hop_limit\": {}, ",
                        "\"degraded_wrong_delivery\": {}, \"degraded_max_stretch\": {}, ",
                        "\"repair_full_rebuild\": {}, \"repair_vertices_touched\": {}, ",
                        "\"repair_landmarks_rebuilt\": {}, \"repair_secs\": {}, ",
                        "\"recovered_delivery\": {}, \"recovered_max_stretch\": {}}}{}\n"
                    ),
                    round.round,
                    round.dead_links,
                    json_f64(round.degraded.delivery_rate()),
                    round.degraded.delivered,
                    round.degraded.link_down,
                    round.degraded.hop_limit,
                    round.degraded.wrong_delivery,
                    json_f64(round.degraded_max_stretch),
                    round.repair.full_rebuild,
                    round.repair.vertices_touched,
                    round.repair.landmarks_rebuilt,
                    json_f64(round.repair.seconds),
                    json_f64(round.recovered.delivery_rate()),
                    json_f64(round.recovered_max_stretch),
                    if j + 1 == r.rounds.len() { "" } else { "," }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 == self.resilience.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        let string_list = |items: &[String]| {
            items
                .iter()
                .map(|e| format!("\"{}\"", json_escape(e)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!("  \"errors\": [{}],\n", string_list(&self.errors)));
        out.push_str(&format!(
            "  \"skipped\": [{}]\n",
            string_list(&self.skipped)
        ));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routeschemes::SchemeKind;

    #[test]
    fn scenario_names_are_unique_and_findable() {
        let all = named_scenarios();
        for s in &all {
            assert_eq!(find_scenario(&s.name).map(|x| x.name), Some(s.name.clone()));
            assert!(!s.cases.is_empty());
        }
        let mut names: Vec<String> = all.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(find_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn find_scenario_is_case_insensitive_and_suggests_near_misses() {
        assert_eq!(find_scenario("SMOKE").map(|s| s.name), Some("smoke".into()));
        assert_eq!(
            find_scenario("Landmark-Sweep").map(|s| s.name),
            Some("landmark-sweep".into())
        );
        // A one-character typo suggests the intended scenario first.
        assert_eq!(suggest_scenarios("smoek")[0], "smoke");
        assert_eq!(suggest_scenarios("theorm1")[0], "theorem1");
        // A substring hits every matching scenario.
        let landmarkish = suggest_scenarios("landmark");
        assert!(landmarkish.iter().any(|n| n == "landmark-130k"));
        assert!(landmarkish.iter().any(|n| n == "landmark-sweep"));
        // Complete nonsense suggests nothing.
        assert!(suggest_scenarios("qqqqqqqqqqqqqqqqq").is_empty());
    }

    #[test]
    fn graph_specs_round_trip_through_the_codec() {
        let specs = [
            "random?n=1024&seed=3162",
            "random?n=64&deg=6.5&seed=1",
            "regular?n=131072&seed=2838",
            "regular?n=64&d=4",
            "ba?n=4096&seed=5",
            "ba?n=64&m=4",
            "powerlaw?n=4096&seed=2",
            "powerlaw?n=256&gamma=2.2&seed=1",
            "grid?rows=32&cols=32",
            "hypercube?dim=10",
            "complete?n=256",
            "tree?n=4096&seed=9",
            "theorem1?n=1024&seed=17",
            "theorem1?n=128&theta=0.25&seed=3",
        ];
        for s in specs {
            let spec = GraphSpec::parse(s).unwrap();
            assert_eq!(spec.spec_string(), s, "canonical form of '{s}'");
            assert_eq!(GraphSpec::parse(&spec.spec_string()).unwrap(), spec);
            assert_eq!(format!("{spec}"), s);
        }
        // Hex seeds and default values normalize to the canonical form.
        let spec = GraphSpec::parse("random?n=1024&deg=8&seed=0xC5A").unwrap();
        assert_eq!(spec.spec_string(), "random?n=1024&seed=3162");
    }

    #[test]
    fn graph_codec_rejections_are_typed() {
        assert!(matches!(
            GraphSpec::parse("blob?n=4"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("random"),
            Err(SpecError::MissingParam { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("grid?rows=4"),
            Err(SpecError::MissingParam { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("random?n=4&bogus=1"),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("random?n=1"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("hypercube?dim=40"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("theorem1?n=64&theta=1.5"),
            Err(SpecError::InvalidValue { .. })
        ));
        // BA needs room for m distinct targets; power-law tails need γ > 2.
        assert!(matches!(
            GraphSpec::parse("ba?n=8&m=8"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("ba?n=8&m=0"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            GraphSpec::parse("powerlaw?n=8&gamma=2"),
            Err(SpecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn every_documented_graph_param_is_accepted() {
        // Anti-drift: a name the docs list must never be rejected as
        // unknown, and a name they do not list must be.
        for key in GraphSpec::ALL_KEYS {
            let docs = GraphSpec::param_docs(key);
            for p in docs {
                let all: Vec<String> = docs.iter().map(|d| format!("{}=4", d.name)).collect();
                let spec = format!("{}?{}", key, all.join("&"));
                match GraphSpec::parse(&spec) {
                    Ok(_) => {}
                    Err(SpecError::UnknownParam { .. }) => {
                        panic!("documented param '{}' rejected: {spec}", p.name)
                    }
                    Err(SpecError::InvalidValue { .. }) => {} // range, not vocabulary
                    Err(other) => panic!("documented param {spec} failed oddly: {other}"),
                }
            }
            let bogus = format!("{key}?definitely-not-a-param=1");
            assert!(
                matches!(
                    GraphSpec::parse(&bogus),
                    Err(SpecError::UnknownParam { .. })
                ),
                "{bogus} must be rejected as unknown"
            );
        }
    }

    #[test]
    fn graph_vocabulary_covers_every_key_and_param() {
        let vocab = GraphSpec::vocabulary();
        for key in GraphSpec::ALL_KEYS {
            assert!(vocab.contains(key), "missing key {key}");
            for p in GraphSpec::param_docs(key) {
                assert!(vocab.contains(p.name), "missing param {} of {key}", p.name);
            }
        }
    }

    #[test]
    fn graph_specs_build_and_label() {
        for spec in [
            GraphSpec::RandomConnected {
                n: 64,
                avg_deg: 6.0,
                seed: 1,
            },
            GraphSpec::RandomRegular {
                n: 64,
                degree: 4,
                seed: 1,
            },
            GraphSpec::Grid { rows: 5, cols: 7 },
            GraphSpec::Hypercube { dim: 5 },
            GraphSpec::CompleteModular { n: 16 },
            GraphSpec::RandomTree { n: 40, seed: 2 },
            GraphSpec::Ba {
                n: 48,
                m: 3,
                seed: 5,
            },
            GraphSpec::PowerLaw {
                n: 48,
                exponent: 2.5,
                seed: 5,
            },
        ] {
            let built = spec.build();
            assert!(built.graph.num_nodes() >= 16, "{}", spec.spec_string());
            assert!(built.constrained.is_empty());
            assert!(!spec.spec_string().is_empty());
        }
        let t1 = GraphSpec::Theorem1 {
            n: 128,
            theta: 0.5,
            seed: 3,
        }
        .build();
        assert_eq!(t1.graph.num_nodes(), 128);
        assert!(!t1.constrained.is_empty());
        assert!(!t1.targets.is_empty());
    }

    #[test]
    fn mini_scenario_runs_end_to_end() {
        let scenario = Scenario {
            name: "mini".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 48,
                    avg_deg: 6.0,
                    seed: 4,
                },
                workload: WorkloadSpec::Uniform {
                    messages: 400,
                    seed: 6,
                },
                schemes: vec![
                    SchemeSpec::default_for(SchemeKind::Table),
                    SchemeSpec::default_for(SchemeKind::SpanningTree),
                    SchemeSpec::Ecube, // does not apply: becomes a skip note
                ],
                block_rows: 8,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        };
        let rep = run_scenario(&scenario, 2);
        assert_eq!(rep.results.len(), 2);
        // e-cube does not apply to a random graph: a skip note, not an error.
        assert_eq!(rep.skipped.len(), 1);
        assert!(rep.errors.is_empty());
        let table_row = &rep.results[0];
        assert_eq!(table_row.scheme_key, "table");
        assert_eq!(table_row.report.routed_messages, 400);
        // stretch-1 promise of tables must hold under measurement
        assert_eq!(table_row.within_guarantee, Some(true));
        let rendered = rep.to_table().to_plain();
        assert!(rendered.contains("table"));
        let json = rep.to_json();
        assert!(json.contains("\"scenario\": \"mini\""));
        assert!(json.contains("\"within_guarantee\": true"));
    }

    #[test]
    fn verify_axis_passes_sound_schemes_through_unchanged() {
        let case = |verify| Case {
            graph: GraphSpec::RandomConnected {
                n: 48,
                avg_deg: 6.0,
                seed: 4,
            },
            workload: WorkloadSpec::Uniform {
                messages: 400,
                seed: 6,
            },
            schemes: vec![
                SchemeSpec::default_for(SchemeKind::Table),
                SchemeSpec::default_for(SchemeKind::Landmark),
            ],
            block_rows: 8,
            churn: None,
            stretch: StretchMode::Auto,
            verify,
        };
        let run = |verify| {
            run_scenario(
                &Scenario {
                    name: "verified".into(),
                    description: "test".into(),
                    cases: vec![case(verify)],
                },
                2,
            )
        };
        let gated = run(true);
        assert_eq!(gated.results.len(), 2, "{:?}", gated.skipped);
        assert!(gated.skipped.is_empty() && gated.errors.is_empty());
        // The gate only filters: measurements of sound schemes are the ones
        // the ungated run produces.
        let ungated = run(false);
        for (a, b) in gated.results.iter().zip(&ungated.results) {
            assert_eq!(a.scheme_spec, b.scheme_spec);
            assert_eq!(a.report.routed_messages, b.report.routed_messages);
            assert_eq!(a.report.outcomes.delivered, b.report.outcomes.delivered);
            assert_eq!(a.stretch.max_stretch, b.stretch.max_stretch);
        }
    }

    #[test]
    fn landmark_sweep_scenario_walks_the_published_ks() {
        let sweep = find_scenario("landmark-sweep").unwrap();
        assert_eq!(sweep.cases.len(), 1);
        let specs: Vec<String> = sweep.cases[0]
            .schemes
            .iter()
            .map(|s| s.spec_string())
            .collect();
        let expected: Vec<String> = LANDMARK_SWEEP_KS
            .iter()
            .map(|k| format!("landmark?k={k}"))
            .collect();
        assert_eq!(specs, expected);
        // The decade must start at-or-above the monotone knee (> √n): below
        // it the bits curve falls as k grows and the sweep stops being a
        // trade-off curve.
        let GraphSpec::RandomConnected { n, .. } = sweep.cases[0].graph else {
            panic!("sweep graph family changed");
        };
        assert!(LANDMARK_SWEEP_KS[0] * LANDMARK_SWEEP_KS[0] >= n);
        assert!(LANDMARK_SWEEP_KS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            LANDMARK_SWEEP_KS[LANDMARK_SWEEP_KS.len() - 1],
            LANDMARK_SWEEP_KS[0] * 10,
            "the sweep spans exactly one decade"
        );
    }

    #[test]
    fn mini_landmark_sweep_bits_increase_and_stretch_holds() {
        // The landmark-sweep acceptance shape at test size: walking k upward
        // from the knee (≈ √(3n), above which the landmark-table term
        // dominates) strictly increases both the max and the mean per-router
        // bits while every point keeps the stretch promise, and every report
        // row carries its full spec.
        let ks = [64usize, 128, 256, 320];
        let scenario = Scenario {
            name: "mini-sweep".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 1024,
                    avg_deg: 8.0,
                    seed: 0xC5A,
                },
                workload: WorkloadSpec::SampledSources {
                    sources: 32,
                    dests_per_source: 64,
                    seed: 9,
                },
                schemes: ks.iter().map(|&k| landmark_with_k(k)).collect(),
                block_rows: 8,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        };
        let rep = run_scenario(&scenario, 2);
        assert!(rep.errors.is_empty(), "{:?}", rep.errors);
        assert_eq!(rep.results.len(), ks.len());
        for (r, k) in rep.results.iter().zip(ks) {
            assert_eq!(r.scheme_key, "landmark");
            assert_eq!(r.scheme_spec, format!("landmark?k={k}"));
            assert_eq!(r.within_guarantee, Some(true));
            assert!(r.report.stretch.max_stretch < 3.0 + 1e-9);
        }
        for w in rep.results.windows(2) {
            assert!(
                w[0].local_bits < w[1].local_bits,
                "max per-router bits must increase: {} !< {} ({} vs {})",
                w[0].local_bits,
                w[1].local_bits,
                w[0].scheme_spec,
                w[1].scheme_spec
            );
            assert!(
                w[0].global_bits < w[1].global_bits,
                "total bits must increase: {} vs {}",
                w[0].scheme_spec,
                w[1].scheme_spec
            );
        }
        // The JSON rows stay distinguishable through the spec field.
        let json = rep.to_json();
        for k in ks {
            assert!(json.contains(&format!("\"spec\": \"landmark?k={k}\"")));
        }
    }

    #[test]
    fn stretch_modes_round_trip_and_resolve() {
        for s in ["auto", "exact", "sampled", "sampled?pairs=1024&seed=7"] {
            let mode = StretchMode::parse(s).unwrap();
            assert_eq!(mode.spec_string(), s, "canonical form of '{s}'");
            assert_eq!(StretchMode::parse(&mode.spec_string()).unwrap(), mode);
        }
        // Defaults normalize away.
        assert_eq!(
            StretchMode::parse("sampled?pairs=16384")
                .unwrap()
                .spec_string(),
            "sampled"
        );
        assert!(matches!(
            StretchMode::parse("approximate"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            StretchMode::parse("sampled?pairs=0"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            StretchMode::parse("exact?pairs=4"),
            Err(SpecError::UnknownParam { .. })
        ));
        // Auto: exact below the threshold, sampled above — except for
        // all-pairs workloads, whose fold already covers every pair.
        let uniform = WorkloadSpec::Uniform {
            messages: 10,
            seed: 0,
        };
        assert_eq!(
            StretchMode::Auto.resolve(1024, &uniform),
            StretchMode::Exact
        );
        assert!(matches!(
            StretchMode::Auto.resolve(SAMPLED_STRETCH_THRESHOLD, &uniform),
            StretchMode::Sampled { .. }
        ));
        assert_eq!(
            StretchMode::Auto.resolve(SAMPLED_STRETCH_THRESHOLD, &WorkloadSpec::AllPairs),
            StretchMode::Exact
        );
        // Explicit modes resolve to themselves.
        assert_eq!(
            StretchMode::Exact.resolve(SAMPLED_STRETCH_THRESHOLD, &uniform),
            StretchMode::Exact
        );
        let vocab = StretchMode::vocabulary();
        for key in StretchMode::ALL_KEYS {
            assert!(vocab.contains(key), "missing key {key}");
        }
        assert!(vocab.contains("pairs"));
    }

    #[test]
    fn sampled_stretch_mode_probes_and_notes_the_row() {
        // An explicitly sampled case: the displayed stretch comes from the
        // dedicated probe (deterministic per seed), the row carries the
        // resolved spec as its note, and the guarantee is judged against
        // the probe's fold.
        let case = |stretch| Case {
            graph: GraphSpec::RandomConnected {
                n: 96,
                avg_deg: 6.0,
                seed: 4,
            },
            workload: WorkloadSpec::Uniform {
                messages: 500,
                seed: 6,
            },
            schemes: vec![SchemeSpec::default_for(SchemeKind::Landmark)],
            block_rows: 8,
            churn: None,
            stretch,
            verify: false,
        };
        let scenario = |stretch| Scenario {
            name: "probe".into(),
            description: "test".into(),
            cases: vec![case(stretch)],
        };
        let sampled = run_scenario(
            &scenario(StretchMode::Sampled {
                pairs: 2048,
                seed: 11,
            }),
            2,
        );
        assert!(sampled.errors.is_empty(), "{:?}", sampled.errors);
        let row = &sampled.results[0];
        assert_eq!(row.stretch_mode, "sampled?pairs=2048&seed=11");
        assert_eq!(row.within_guarantee, Some(true));
        // The probe's pair count is its own, not the workload's.
        assert_ne!(row.stretch.pairs, row.report.stretch.pairs);
        assert!(row.stretch.pairs >= 2048 - 64, "{}", row.stretch.pairs);
        // Same probe, different thread count: bit-identical estimate.
        let again = run_scenario(
            &scenario(StretchMode::Sampled {
                pairs: 2048,
                seed: 11,
            }),
            1,
        );
        assert_eq!(
            again.results[0].stretch.avg_stretch.to_bits(),
            row.stretch.avg_stretch.to_bits()
        );
        // Exact mode: the displayed stretch IS the workload fold.
        let exact = run_scenario(&scenario(StretchMode::Exact), 2);
        let row = &exact.results[0];
        assert_eq!(row.stretch_mode, "exact");
        assert_eq!(
            row.stretch.avg_stretch.to_bits(),
            row.report.stretch.avg_stretch.to_bits()
        );
        // The note lands in both renderings.
        let json = sampled.to_json();
        assert!(json.contains("\"stretch_mode\": \"sampled?pairs=2048&seed=11\""));
        assert!(exact.to_json().contains("\"stretch_mode\": \"exact\""));
        assert!(sampled.to_table().to_plain().contains("sampled?pairs=2048"));
    }

    #[test]
    fn invalid_workloads_become_errors_not_panics() {
        // Programmatically-built scenarios get the same guard as files: an
        // out-of-range broadcast root is an error entry, not an assert panic.
        let scenario = Scenario {
            name: "bad-root".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::Grid { rows: 4, cols: 4 },
                workload: WorkloadSpec::Broadcast { roots: vec![0, 99] },
                schemes: vec![SchemeSpec::default_for(SchemeKind::SpanningTree)],
                block_rows: 0,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        };
        let rep = run_scenario(&scenario, 1);
        assert!(rep.results.is_empty());
        assert_eq!(rep.errors.len(), 1);
        assert!(
            rep.errors[0].contains("broadcast root 99 is out of range"),
            "{:?}",
            rep.errors[0]
        );
        // Sub-2-vertex graphs are rejected the same way.
        let scenario = Scenario {
            name: "too-small".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::Grid { rows: 1, cols: 1 },
                workload: WorkloadSpec::AllPairs,
                schemes: vec![SchemeSpec::default_for(SchemeKind::SpanningTree)],
                block_rows: 0,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        };
        let rep = run_scenario(&scenario, 1);
        assert!(rep.results.is_empty());
        assert_eq!(rep.errors.len(), 1);
        assert!(rep.errors[0].contains("at least two vertices"));
    }

    #[test]
    fn build_failures_become_typed_skip_notes() {
        // A spec whose cap cannot be met is a skip with the typed reason,
        // not an error, and not a panic.
        let scenario = Scenario {
            name: "capped".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 48,
                    avg_deg: 6.0,
                    seed: 4,
                },
                workload: WorkloadSpec::Uniform {
                    messages: 200,
                    seed: 6,
                },
                schemes: vec![SchemeSpec::parse("interval?k=1").unwrap()],
                block_rows: 8,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        };
        let rep = run_scenario(&scenario, 1);
        assert!(rep.results.is_empty());
        assert!(rep.errors.is_empty());
        assert_eq!(rep.skipped.len(), 1);
        assert!(
            rep.skipped[0].contains("cap 'k' exceeded"),
            "note must carry the typed reason: {:?}",
            rep.skipped[0]
        );
    }

    #[test]
    fn theorem1_probes_route_constrained_pairs() {
        let scenario = Scenario {
            name: "t1-mini".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::Theorem1 {
                    n: 128,
                    theta: 0.5,
                    seed: 3,
                },
                workload: WorkloadSpec::ConstrainedProbes,
                schemes: vec![SchemeSpec::default_for(SchemeKind::Table)],
                block_rows: 4,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        };
        let built = GraphSpec::Theorem1 {
            n: 128,
            theta: 0.5,
            seed: 3,
        }
        .build();
        let rep = run_scenario(&scenario, 1);
        assert_eq!(rep.results.len(), 1);
        assert_eq!(
            rep.results[0].report.routed_messages,
            (built.constrained.len() * built.targets.len()) as u64
        );
    }
}
