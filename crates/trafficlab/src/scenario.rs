//! Named scenarios: graph family × traffic pattern × scheme set, and the
//! runner that turns one into a comparative report.
//!
//! A [`Scenario`] is a list of [`Case`]s.  Each case names a graph family
//! ([`GraphSpec`]), a traffic pattern (the scenario vocabulary of
//! [`Workload`]), and the registry schemes to drive over it.  The runner
//! instantiates every applicable scheme, pushes the workload through the
//! sharded engine, and reports **measured** stretch/congestion next to the
//! scheme's **promised** `guaranteed_stretch` and `MemoryReport` — the
//! upper-bound side of the paper's Table 1, observed under load instead of
//! quoted.
//!
//! Reports render as an [`analysis::Table`] for the console and as JSON for
//! snapshots (`ScenarioReport::to_json`).

use crate::engine::{run_workload, EngineConfig, WorkloadReport};
use crate::workload::Workload;
use analysis::report::{fmt_f64, json_escape, json_f64, Table};
use constraints::theorem1::build_worst_case_instance;
use graphkit::{generators, Graph, NodeId};
use routemodel::labeling::modular_complete_labeling;
use routeschemes::landmark::{ClusterRule, LandmarkConfig, LandmarkCount};
use routeschemes::{GraphHints, SchemeKind, SchemeSpec};
use std::time::Instant;

/// A graph family, concretely parameterized.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// `random_connected(n, avg_deg / n, seed)` — the default workload graph.
    /// Generation is `O(n²)` Bernoulli trials: keep `n ≲ 10^4`.
    RandomConnected { n: usize, avg_deg: f64, seed: u64 },
    /// `random_regular_like(n, degree, seed)` — `O(n · degree)` generation,
    /// the family for the `n ≥ 10^5` sharded points.
    RandomRegular { n: usize, degree: usize, seed: u64 },
    /// `rows × cols` grid (dimension-order routing applies).
    Grid { rows: usize, cols: usize },
    /// The `dim`-dimensional hypercube (e-cube routing applies).
    Hypercube { dim: usize },
    /// `K_n` with the modular port labeling (the `O(log n)` scheme applies).
    CompleteModular { n: usize },
    /// A random tree (tree schemes are stretch-1 here).
    RandomTree { n: usize, seed: u64 },
    /// A Theorem 1 worst-case instance: the padded graph of constraints of a
    /// random representative matrix.
    Theorem1 { n: usize, theta: f64, seed: u64 },
}

/// A graph spec materialized: the graph, registry hints, and (for Theorem 1
/// instances) the constrained/target vertex sets.
pub struct BuiltGraph {
    pub graph: Graph,
    pub hints: GraphHints,
    /// Constrained vertices of a Theorem 1 instance (empty otherwise).
    pub constrained: Vec<NodeId>,
    /// Target vertices of a Theorem 1 instance (empty otherwise).
    pub targets: Vec<NodeId>,
}

impl GraphSpec {
    /// Builds the graph (deterministic per spec).
    pub fn build(&self) -> BuiltGraph {
        let plain = |graph: Graph| BuiltGraph {
            graph,
            hints: GraphHints::none(),
            constrained: Vec::new(),
            targets: Vec::new(),
        };
        match *self {
            GraphSpec::RandomConnected { n, avg_deg, seed } => {
                plain(generators::random_connected(n, avg_deg / n as f64, seed))
            }
            GraphSpec::RandomRegular { n, degree, seed } => {
                plain(generators::random_regular_like(n, degree, seed))
            }
            GraphSpec::Grid { rows, cols } => BuiltGraph {
                graph: generators::grid(rows, cols),
                hints: GraphHints::grid(rows, cols),
                constrained: Vec::new(),
                targets: Vec::new(),
            },
            GraphSpec::Hypercube { dim } => BuiltGraph {
                graph: generators::hypercube(dim),
                // Pin hypercube detection: the generator vouches for the
                // dimension-port labeling, so e-cube skips its O(n log n)
                // structural scan.
                hints: GraphHints::hypercube(dim as u32),
                constrained: Vec::new(),
                targets: Vec::new(),
            },
            GraphSpec::CompleteModular { n } => plain(modular_complete_labeling(n)),
            GraphSpec::RandomTree { n, seed } => plain(generators::random_tree(n, seed)),
            GraphSpec::Theorem1 { n, theta, seed } => {
                let (cg, _params) = build_worst_case_instance(n, theta, seed);
                BuiltGraph {
                    graph: cg.graph,
                    hints: GraphHints::none(),
                    constrained: cg.constrained,
                    targets: cg.targets,
                }
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::RandomConnected { n, avg_deg, .. } => {
                format!("random(n={n},deg={avg_deg})")
            }
            GraphSpec::RandomRegular { n, degree, .. } => format!("regular(n={n},d={degree})"),
            GraphSpec::Grid { rows, cols } => format!("grid({rows}x{cols})"),
            GraphSpec::Hypercube { dim } => format!("hypercube({dim})"),
            GraphSpec::CompleteModular { n } => format!("complete(n={n})"),
            GraphSpec::RandomTree { n, .. } => format!("tree(n={n})"),
            GraphSpec::Theorem1 { n, theta, .. } => format!("theorem1(n={n},theta={theta})"),
        }
    }
}

/// The traffic of one case: a standard pattern, or the Theorem 1 probe set
/// (every constrained vertex sends to every target vertex — the pairs whose
/// first ports the planted matrix forces).
#[derive(Debug, Clone, PartialEq)]
pub enum CaseWorkload {
    Pattern(Workload),
    ConstrainedProbes,
}

impl CaseWorkload {
    fn key(&self) -> &'static str {
        match self {
            CaseWorkload::Pattern(w) => w.key(),
            CaseWorkload::ConstrainedProbes => "constrained-probes",
        }
    }
}

/// One graph × workload × scheme-set cell of a scenario.
///
/// Schemes are full [`SchemeSpec`]s, not bare kinds: a case can drive the
/// same family at several parameter points (the `landmark-sweep` scenario is
/// one case whose scheme list walks `k`).
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    pub graph: GraphSpec,
    pub workload: CaseWorkload,
    pub schemes: Vec<SchemeSpec>,
    /// Engine block size override (`0` = engine default).
    pub block_rows: usize,
}

/// A named, reproducible experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub description: String,
    pub cases: Vec<Case>,
}

/// The landmark counts the `landmark-sweep` scenario (and its bench twin)
/// walks at n = 4096: one decade upward from the measured memory-optimal
/// point.  On this graph the clusters average `≈ 3n/k`, which puts the
/// minimum of `k + |S|` near `k = √(3n) ≈ 110`, not at `⌈√n⌉ = 64`; below
/// that the cluster term dominates and per-router bits *fall* as `k` grows,
/// from there up the landmark table dominates, so the swept curve is
/// monotone — more landmarks, more bits, shorter detours.
pub const LANDMARK_SWEEP_KS: [usize; 5] = [128, 256, 512, 1024, 1280];

/// A landmark spec with an explicit landmark count (default rule and seed).
pub fn landmark_with_k(k: usize) -> SchemeSpec {
    SchemeSpec::Landmark(LandmarkConfig {
        landmarks: LandmarkCount::Count(k),
        ..LandmarkConfig::default()
    })
}

/// The strict-cluster landmark spec (`landmark?clusters=strict`).
pub fn landmark_strict() -> SchemeSpec {
    SchemeSpec::Landmark(LandmarkConfig {
        cluster_rule: ClusterRule::Strict,
        ..LandmarkConfig::default()
    })
}

/// The built-in scenario book.
///
/// * `smoke` — n = 1024 graphs covering **every** registry scheme; quick.
/// * `uniform-1m` — 10^6 uniform messages on an n = 4096 random graph.
/// * `sharded-130k` — an n = 131072 graph swept block-by-block (sampled
///   sources); the point that cannot exist with a dense matrix (64 GiB).
/// * `landmark-130k` — the stretch `< 3` scheme at n = 131072: landmark
///   routing built sparsely (no dense matrix), under both cluster rules,
///   next to the spanning tree.
/// * `landmark-sweep` — the measured bits-vs-stretch curve: one n = 4096
///   graph, `k` swept over [`LANDMARK_SWEEP_KS`] (Table 1's trade-off rows
///   as data, not quotes).
/// * `zipf-hotspot` — skewed destinations vs. uniform, congestion focus.
/// * `broadcast` — one-to-all tree traffic.
/// * `permutation-cube` — permutation rounds on the hypercube.
/// * `theorem1` — constrained-vertex probes on worst-case instances, at
///   n = 1024 under every universal scheme and at n = 16384 under the
///   near-linear ones; the strict cluster rule rides along there because
///   tiny-diameter instances are exactly where it beats the inclusive rule.
pub fn named_scenarios() -> Vec<Scenario> {
    let d = SchemeSpec::default_for;
    let universal = vec![
        d(SchemeKind::Table),
        d(SchemeKind::SpanningTree),
        d(SchemeKind::KInterval),
        d(SchemeKind::Landmark),
    ];
    vec![
        Scenario {
            name: "smoke".into(),
            description: "every registry scheme exercised once at n = 1024".into(),
            cases: vec![
                Case {
                    graph: GraphSpec::RandomConnected {
                        n: 1024,
                        avg_deg: 8.0,
                        seed: 0xC5A,
                    },
                    workload: CaseWorkload::Pattern(Workload::Uniform {
                        messages: 20_000,
                        seed: 1,
                    }),
                    schemes: universal.clone(),
                    block_rows: 0,
                },
                Case {
                    graph: GraphSpec::Hypercube { dim: 10 },
                    workload: CaseWorkload::Pattern(Workload::Uniform {
                        messages: 20_000,
                        seed: 2,
                    }),
                    schemes: vec![d(SchemeKind::Ecube), d(SchemeKind::SpanningTree)],
                    block_rows: 0,
                },
                Case {
                    graph: GraphSpec::Grid { rows: 32, cols: 32 },
                    workload: CaseWorkload::Pattern(Workload::Uniform {
                        messages: 20_000,
                        seed: 3,
                    }),
                    schemes: vec![d(SchemeKind::DimensionOrder), d(SchemeKind::SpanningTree)],
                    block_rows: 0,
                },
                Case {
                    graph: GraphSpec::CompleteModular { n: 256 },
                    workload: CaseWorkload::Pattern(Workload::Uniform {
                        messages: 20_000,
                        seed: 4,
                    }),
                    schemes: vec![d(SchemeKind::ModularComplete), d(SchemeKind::Table)],
                    block_rows: 0,
                },
            ],
        },
        Scenario {
            name: "uniform-1m".into(),
            description: "one million uniform messages on an n = 4096 random graph".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 4096,
                    avg_deg: 8.0,
                    seed: 0xC5A,
                },
                workload: CaseWorkload::Pattern(Workload::Uniform {
                    messages: 1_000_000,
                    seed: 7,
                }),
                schemes: vec![d(SchemeKind::SpanningTree)],
                block_rows: 0,
            }],
        },
        Scenario {
            name: "sharded-130k".into(),
            description: "block-streamed sweep at n = 131072 — no dense matrix can exist".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomRegular {
                    n: 131_072,
                    degree: 8,
                    seed: 0xB16,
                },
                workload: CaseWorkload::Pattern(Workload::SampledSources {
                    sources: 64,
                    dests_per_source: 256,
                    seed: 11,
                }),
                schemes: vec![d(SchemeKind::SpanningTree)],
                block_rows: 1,
            }],
        },
        Scenario {
            name: "landmark-130k".into(),
            description: "landmark routing (stretch < 3) built sparsely at n = 131072".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomRegular {
                    n: 131_072,
                    degree: 8,
                    seed: 0xB16,
                },
                workload: CaseWorkload::Pattern(Workload::SampledSources {
                    sources: 64,
                    dests_per_source: 256,
                    seed: 11,
                }),
                schemes: vec![
                    d(SchemeKind::Landmark),
                    landmark_strict(),
                    d(SchemeKind::SpanningTree),
                ],
                block_rows: 1,
            }],
        },
        Scenario {
            name: "landmark-sweep".into(),
            description: "bits-vs-stretch curve: landmark k swept over a decade at n = 4096".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 4096,
                    avg_deg: 8.0,
                    seed: 0xC5A,
                },
                workload: CaseWorkload::Pattern(Workload::SampledSources {
                    sources: 128,
                    dests_per_source: 128,
                    seed: 21,
                }),
                schemes: LANDMARK_SWEEP_KS
                    .iter()
                    .map(|&k| landmark_with_k(k))
                    .collect(),
                block_rows: 0,
            }],
        },
        Scenario {
            name: "zipf-hotspot".into(),
            description: "Zipf-skewed destinations vs uniform on the same graph".into(),
            cases: vec![
                Case {
                    graph: GraphSpec::RandomConnected {
                        n: 2048,
                        avg_deg: 8.0,
                        seed: 0xC5A,
                    },
                    workload: CaseWorkload::Pattern(Workload::Zipf {
                        messages: 200_000,
                        exponent: 1.1,
                        seed: 5,
                    }),
                    schemes: universal.clone(),
                    block_rows: 0,
                },
                Case {
                    graph: GraphSpec::RandomConnected {
                        n: 2048,
                        avg_deg: 8.0,
                        seed: 0xC5A,
                    },
                    workload: CaseWorkload::Pattern(Workload::Uniform {
                        messages: 200_000,
                        seed: 5,
                    }),
                    schemes: universal,
                    block_rows: 0,
                },
            ],
        },
        Scenario {
            name: "broadcast".into(),
            description: "one-to-all broadcasts; congestion concentrates near the roots".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomTree { n: 4096, seed: 9 },
                workload: CaseWorkload::Pattern(Workload::Broadcast {
                    roots: vec![0, 1, 2, 3],
                }),
                schemes: vec![d(SchemeKind::SpanningTree)],
                block_rows: 1,
            }],
        },
        Scenario {
            name: "permutation-cube".into(),
            description: "random permutation rounds on the 10-cube".into(),
            cases: vec![Case {
                graph: GraphSpec::Hypercube { dim: 10 },
                workload: CaseWorkload::Pattern(Workload::Permutations {
                    rounds: 64,
                    seed: 13,
                }),
                schemes: vec![d(SchemeKind::Ecube), d(SchemeKind::Table)],
                block_rows: 0,
            }],
        },
        Scenario {
            name: "theorem1".into(),
            description: "constrained-vertex probes on Theorem 1 worst-case instances".into(),
            cases: vec![
                Case {
                    graph: GraphSpec::Theorem1 {
                        n: 1024,
                        theta: 0.5,
                        seed: 17,
                    },
                    workload: CaseWorkload::ConstrainedProbes,
                    schemes: vec![
                        d(SchemeKind::Table),
                        d(SchemeKind::SpanningTree),
                        d(SchemeKind::Landmark),
                        landmark_strict(),
                    ],
                    block_rows: 0,
                },
                // Past the former n = 1024 cap: probe evaluation used to
                // build full tables; the near-linear schemes (sparse
                // landmark + spanning tree) lift it.  Worst-case instances
                // have tiny diameter, which inflates the `≤`-rule clusters —
                // n = 16384 keeps the landmark build in the tens of seconds.
                Case {
                    graph: GraphSpec::Theorem1 {
                        n: 16384,
                        theta: 0.5,
                        seed: 17,
                    },
                    workload: CaseWorkload::ConstrainedProbes,
                    schemes: vec![
                        d(SchemeKind::Landmark),
                        landmark_strict(),
                        d(SchemeKind::SpanningTree),
                    ],
                    block_rows: 8,
                },
            ],
        },
    ]
}

/// Looks a scenario up by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    named_scenarios().into_iter().find(|s| s.name == name)
}

/// One (case, scheme) measurement.
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub graph_label: String,
    pub n: usize,
    pub edges: usize,
    pub workload_key: String,
    /// The family key (`landmark`, `tree`, ...).
    pub scheme_key: String,
    /// The full canonical spec string (`landmark?k=64&clusters=strict`); the
    /// bare key when every parameter is at its default.  Every report row
    /// carries it so a sweep's points stay distinguishable.
    pub scheme_spec: String,
    pub scheme_name: String,
    /// The scheme's local (max per router) memory, in bits.
    pub local_bits: u64,
    /// The scheme's global (sum) memory, in bits.
    pub global_bits: u64,
    /// The stretch bound the scheme promises (`None` = no guarantee).
    pub guaranteed_stretch: Option<f64>,
    /// Whether the measured max stretch respects the promise (`None` when no
    /// promise was made).
    pub within_guarantee: Option<bool>,
    pub report: WorkloadReport,
    /// Wall-clock seconds to build the scheme instance.
    pub build_secs: f64,
    /// Wall-clock seconds to run the workload.
    pub run_secs: f64,
    /// Delivered messages per second of run time.
    pub messages_per_sec: f64,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    pub scenario: String,
    pub results: Vec<CaseResult>,
    /// Routing-model failures (loops, wrong deliveries, ...) — a non-empty
    /// list means a scheme is broken, and the CLI exits non-zero on it.
    pub errors: Vec<String>,
    /// Benign notes: cells skipped because the scheme does not apply to the
    /// case's graph.
    pub skipped: Vec<String>,
}

/// Above this vertex count, schemes whose construction is quadratic (see
/// [`SchemeKind::scales_to_large_graphs`]) are skipped with a note instead
/// of being built.
pub const LARGE_GRAPH_THRESHOLD: usize = 50_000;

/// Runs every (case, scheme) cell of a scenario.
///
/// Inapplicable schemes — and schemes whose construction cannot scale to the
/// case's graph — become [`ScenarioReport::skipped`] notes; routing failures
/// become [`ScenarioReport::errors`] entries instead of aborting the sweep.
pub fn run_scenario(scenario: &Scenario, threads: usize) -> ScenarioReport {
    let mut out = ScenarioReport {
        scenario: scenario.name.clone(),
        ..Default::default()
    };
    for case in &scenario.cases {
        let built = case.graph.build();
        let n = built.graph.num_nodes();
        let graph_label = case.graph.label();
        let plan = match &case.workload {
            CaseWorkload::Pattern(w) => w.compile(n),
            CaseWorkload::ConstrainedProbes => {
                let mut pairs = Vec::with_capacity(built.constrained.len() * built.targets.len());
                for &a in &built.constrained {
                    for &b in &built.targets {
                        pairs.push((a, b));
                    }
                }
                crate::workload::WorkloadPlan::from_pairs(n, pairs)
            }
        };
        let cfg = EngineConfig {
            threads,
            block_rows: case.block_rows,
            track_congestion: true,
        };
        for spec in &case.schemes {
            // Specs whose construction is quadratic at this size — an O(n²)
            // family, or a near-linear family driven with quadratic
            // parameters (landmark k ≫ √n) — would hang (or OOM) a large
            // case long before the engine runs; skip them up front.
            if n >= LARGE_GRAPH_THRESHOLD && !spec.scales_to_large_graphs(n) {
                out.skipped.push(format!(
                    "{graph_label}: scheme '{spec}' skipped (construction cannot scale to n = {n})"
                ));
                continue;
            }
            let t0 = Instant::now();
            let instance = match spec.build(&built.graph, &built.hints) {
                Ok(instance) => instance,
                Err(e) => {
                    // A typed build failure is a benign skip with its reason
                    // spelled out, not an aborted sweep.
                    out.skipped
                        .push(format!("{graph_label}: scheme '{spec}' skipped: {e}"));
                    continue;
                }
            };
            let build_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            match run_workload(&built.graph, instance.routing.as_ref(), &plan, &cfg) {
                Ok(report) => {
                    let run_secs = t1.elapsed().as_secs_f64();
                    let within_guarantee = instance
                        .guaranteed_stretch
                        .map(|bound| report.stretch.max_stretch <= bound + 1e-9);
                    out.results.push(CaseResult {
                        graph_label: graph_label.clone(),
                        n,
                        edges: built.graph.num_edges(),
                        workload_key: case.workload.key().to_string(),
                        scheme_key: spec.key().to_string(),
                        scheme_spec: spec.spec_string(),
                        scheme_name: instance.routing.name().to_string(),
                        local_bits: instance.memory.local(),
                        global_bits: instance.memory.global(),
                        guaranteed_stretch: instance.guaranteed_stretch,
                        within_guarantee,
                        messages_per_sec: if run_secs > 0.0 {
                            report.routed_messages as f64 / run_secs
                        } else {
                            0.0
                        },
                        report,
                        build_secs,
                        run_secs,
                    });
                }
                Err(e) => out
                    .errors
                    .push(format!("{graph_label}: scheme '{spec}' failed: {e}")),
            }
        }
    }
    out
}

impl ScenarioReport {
    /// Console rendering: one row per (case, scheme).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "graph",
            "workload",
            "scheme",
            "msgs",
            "max_stretch",
            "avg_stretch",
            "guarantee",
            "max_arc_load",
            "p99_len",
            "local_bits",
            "narrow/blocks",
            "msgs/s",
        ]);
        for r in &self.results {
            t.push_row([
                r.graph_label.clone(),
                r.workload_key.clone(),
                // Full spec: bare key for defaults, parameters otherwise.
                r.scheme_spec.clone(),
                r.report.routed_messages.to_string(),
                fmt_f64(r.report.stretch.max_stretch, 3),
                fmt_f64(r.report.stretch.avg_stretch, 3),
                match (r.guaranteed_stretch, r.within_guarantee) {
                    (Some(b), Some(true)) => format!("<={} ok", fmt_f64(b, 1)),
                    (Some(b), Some(false)) => format!("<={} VIOLATED", fmt_f64(b, 1)),
                    _ => "none".to_string(),
                },
                r.report
                    .congestion
                    .as_ref()
                    .map_or("-".into(), |c| c.max_arc_load.to_string()),
                r.report
                    .lengths
                    .quantile(0.99)
                    .map_or("-".into(), |l| l.to_string()),
                r.local_bits.to_string(),
                format!("{}/{}", r.report.narrow_blocks, r.report.blocks),
                format!("{:.0}", r.messages_per_sec),
            ]);
        }
        t
    }

    /// JSON rendering for snapshots and CI artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            json_escape(&self.scenario)
        ));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let cong = r.report.congestion.as_ref();
            out.push_str(&format!(
                concat!(
                    "    {{\"graph\": \"{}\", \"n\": {}, \"edges\": {}, ",
                    "\"workload\": \"{}\", \"scheme\": \"{}\", \"spec\": \"{}\", ",
                    "\"scheme_name\": \"{}\", ",
                    "\"messages\": {}, \"skipped_unreachable\": {}, ",
                    "\"max_stretch\": {}, \"avg_stretch\": {}, \"max_route_len\": {}, ",
                    "\"guaranteed_stretch\": {}, \"within_guarantee\": {}, ",
                    "\"max_arc_load\": {}, \"mean_arc_load\": {}, ",
                    "\"local_bits\": {}, \"global_bits\": {}, ",
                    "\"blocks\": {}, \"narrow_blocks\": {}, \"peak_tracked_bytes\": {}, ",
                    "\"build_secs\": {}, \"run_secs\": {}, \"messages_per_sec\": {}}}{}\n"
                ),
                json_escape(&r.graph_label),
                r.n,
                r.edges,
                json_escape(&r.workload_key),
                json_escape(&r.scheme_key),
                json_escape(&r.scheme_spec),
                json_escape(&r.scheme_name),
                r.report.routed_messages,
                r.report.skipped_unreachable,
                json_f64(r.report.stretch.max_stretch),
                json_f64(r.report.stretch.avg_stretch),
                r.report.stretch.max_route_len,
                r.guaranteed_stretch.map_or("null".into(), json_f64),
                r.within_guarantee
                    .map_or("null".to_string(), |b| b.to_string()),
                cong.map_or("null".into(), |c| c.max_arc_load.to_string()),
                cong.map_or("null".into(), |c| json_f64(c.mean_arc_load)),
                r.local_bits,
                r.global_bits,
                r.report.blocks,
                r.report.narrow_blocks,
                r.report.peak_tracked_bytes,
                json_f64(r.build_secs),
                json_f64(r.run_secs),
                json_f64(r.messages_per_sec),
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        let string_list = |items: &[String]| {
            items
                .iter()
                .map(|e| format!("\"{}\"", json_escape(e)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!("  \"errors\": [{}],\n", string_list(&self.errors)));
        out.push_str(&format!(
            "  \"skipped\": [{}]\n",
            string_list(&self.skipped)
        ));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique_and_findable() {
        let all = named_scenarios();
        for s in &all {
            assert_eq!(find_scenario(&s.name).map(|x| x.name), Some(s.name.clone()));
            assert!(!s.cases.is_empty());
        }
        let mut names: Vec<String> = all.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert!(find_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn graph_specs_build_and_label() {
        for spec in [
            GraphSpec::RandomConnected {
                n: 64,
                avg_deg: 6.0,
                seed: 1,
            },
            GraphSpec::RandomRegular {
                n: 64,
                degree: 4,
                seed: 1,
            },
            GraphSpec::Grid { rows: 5, cols: 7 },
            GraphSpec::Hypercube { dim: 5 },
            GraphSpec::CompleteModular { n: 16 },
            GraphSpec::RandomTree { n: 40, seed: 2 },
        ] {
            let built = spec.build();
            assert!(built.graph.num_nodes() >= 16, "{}", spec.label());
            assert!(built.constrained.is_empty());
            assert!(!spec.label().is_empty());
        }
        let t1 = GraphSpec::Theorem1 {
            n: 128,
            theta: 0.5,
            seed: 3,
        }
        .build();
        assert_eq!(t1.graph.num_nodes(), 128);
        assert!(!t1.constrained.is_empty());
        assert!(!t1.targets.is_empty());
    }

    #[test]
    fn mini_scenario_runs_end_to_end() {
        let scenario = Scenario {
            name: "mini".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 48,
                    avg_deg: 6.0,
                    seed: 4,
                },
                workload: CaseWorkload::Pattern(Workload::Uniform {
                    messages: 400,
                    seed: 6,
                }),
                schemes: vec![
                    SchemeSpec::default_for(SchemeKind::Table),
                    SchemeSpec::default_for(SchemeKind::SpanningTree),
                    SchemeSpec::Ecube, // does not apply: becomes a skip note
                ],
                block_rows: 8,
            }],
        };
        let rep = run_scenario(&scenario, 2);
        assert_eq!(rep.results.len(), 2);
        // e-cube does not apply to a random graph: a skip note, not an error.
        assert_eq!(rep.skipped.len(), 1);
        assert!(rep.errors.is_empty());
        let table_row = &rep.results[0];
        assert_eq!(table_row.scheme_key, "table");
        assert_eq!(table_row.report.routed_messages, 400);
        // stretch-1 promise of tables must hold under measurement
        assert_eq!(table_row.within_guarantee, Some(true));
        let rendered = rep.to_table().to_plain();
        assert!(rendered.contains("table"));
        let json = rep.to_json();
        assert!(json.contains("\"scenario\": \"mini\""));
        assert!(json.contains("\"within_guarantee\": true"));
    }

    #[test]
    fn landmark_sweep_scenario_walks_the_published_ks() {
        let sweep = find_scenario("landmark-sweep").unwrap();
        assert_eq!(sweep.cases.len(), 1);
        let specs: Vec<String> = sweep.cases[0]
            .schemes
            .iter()
            .map(|s| s.spec_string())
            .collect();
        let expected: Vec<String> = LANDMARK_SWEEP_KS
            .iter()
            .map(|k| format!("landmark?k={k}"))
            .collect();
        assert_eq!(specs, expected);
        // The decade must start at-or-above the monotone knee (> √n): below
        // it the bits curve falls as k grows and the sweep stops being a
        // trade-off curve.
        let GraphSpec::RandomConnected { n, .. } = sweep.cases[0].graph else {
            panic!("sweep graph family changed");
        };
        assert!(LANDMARK_SWEEP_KS[0] * LANDMARK_SWEEP_KS[0] >= n);
        assert!(LANDMARK_SWEEP_KS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            LANDMARK_SWEEP_KS[LANDMARK_SWEEP_KS.len() - 1],
            LANDMARK_SWEEP_KS[0] * 10,
            "the sweep spans exactly one decade"
        );
    }

    #[test]
    fn mini_landmark_sweep_bits_increase_and_stretch_holds() {
        // The landmark-sweep acceptance shape at test size: walking k upward
        // from the knee (≈ √(3n), above which the landmark-table term
        // dominates) strictly increases both the max and the mean per-router
        // bits while every point keeps the stretch promise, and every report
        // row carries its full spec.
        let ks = [64usize, 128, 256, 320];
        let scenario = Scenario {
            name: "mini-sweep".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 1024,
                    avg_deg: 8.0,
                    seed: 0xC5A,
                },
                workload: CaseWorkload::Pattern(Workload::SampledSources {
                    sources: 32,
                    dests_per_source: 64,
                    seed: 9,
                }),
                schemes: ks.iter().map(|&k| landmark_with_k(k)).collect(),
                block_rows: 8,
            }],
        };
        let rep = run_scenario(&scenario, 2);
        assert!(rep.errors.is_empty(), "{:?}", rep.errors);
        assert_eq!(rep.results.len(), ks.len());
        for (r, k) in rep.results.iter().zip(ks) {
            assert_eq!(r.scheme_key, "landmark");
            assert_eq!(r.scheme_spec, format!("landmark?k={k}"));
            assert_eq!(r.within_guarantee, Some(true));
            assert!(r.report.stretch.max_stretch < 3.0 + 1e-9);
        }
        for w in rep.results.windows(2) {
            assert!(
                w[0].local_bits < w[1].local_bits,
                "max per-router bits must increase: {} !< {} ({} vs {})",
                w[0].local_bits,
                w[1].local_bits,
                w[0].scheme_spec,
                w[1].scheme_spec
            );
            assert!(
                w[0].global_bits < w[1].global_bits,
                "total bits must increase: {} vs {}",
                w[0].scheme_spec,
                w[1].scheme_spec
            );
        }
        // The JSON rows stay distinguishable through the spec field.
        let json = rep.to_json();
        for k in ks {
            assert!(json.contains(&format!("\"spec\": \"landmark?k={k}\"")));
        }
    }

    #[test]
    fn build_failures_become_typed_skip_notes() {
        // A spec whose cap cannot be met is a skip with the typed reason,
        // not an error, and not a panic.
        let scenario = Scenario {
            name: "capped".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 48,
                    avg_deg: 6.0,
                    seed: 4,
                },
                workload: CaseWorkload::Pattern(Workload::Uniform {
                    messages: 200,
                    seed: 6,
                }),
                schemes: vec![SchemeSpec::parse("interval?k=1").unwrap()],
                block_rows: 8,
            }],
        };
        let rep = run_scenario(&scenario, 1);
        assert!(rep.results.is_empty());
        assert!(rep.errors.is_empty());
        assert_eq!(rep.skipped.len(), 1);
        assert!(
            rep.skipped[0].contains("cap 'k' exceeded"),
            "note must carry the typed reason: {:?}",
            rep.skipped[0]
        );
    }

    #[test]
    fn theorem1_probes_route_constrained_pairs() {
        let scenario = Scenario {
            name: "t1-mini".into(),
            description: "test".into(),
            cases: vec![Case {
                graph: GraphSpec::Theorem1 {
                    n: 128,
                    theta: 0.5,
                    seed: 3,
                },
                workload: CaseWorkload::ConstrainedProbes,
                schemes: vec![SchemeSpec::default_for(SchemeKind::Table)],
                block_rows: 4,
            }],
        };
        let built = GraphSpec::Theorem1 {
            n: 128,
            theta: 0.5,
            seed: 3,
        }
        .build();
        let rep = run_scenario(&scenario, 1);
        assert_eq!(rep.results.len(), 1);
        assert_eq!(
            rep.results[0].report.routed_messages,
            (built.constrained.len() * built.targets.len()) as u64
        );
    }
}
