//! Traffic-scenario generators: who sends how many messages to whom.
//!
//! A [`WorkloadSpec`] describes a traffic pattern symbolically; compiling it
//! against a vertex count yields a [`WorkloadPlan`] — the per-source
//! destination lists the sharded engine streams over.  Compilation is
//! deterministic per seed: the same workload on the same graph produces the
//! same messages on every machine and for every worker count, which is what
//! makes the engine's reports reproducible.
//!
//! Like scheme specs, workloads carry a stable string codec on the shared
//! `speclang` grammar — `zipf?messages=1e6&s=1.2&seed=3`,
//! `bisection?messages=200000` — with [`WorkloadSpec::param_docs`] as the
//! single source for both the parser's rejections and the CLI vocabulary,
//! and `parse ∘ spec_string = id` pinned by round-trip tests.  Scenario
//! files and report rows carry these strings, so a report row always names
//! the *full* pattern, not a lossy family label.
//!
//! All patterns except [`WorkloadSpec::AllPairs`] compile to an explicit
//! CSR-shaped plan (`offsets` + flat destination array, grouped by source in
//! source order).  `AllPairs` stays implicit — materializing `n (n − 1)`
//! pairs would defeat the point of block streaming.

use graphkit::{NodeId, Xoshiro256};
pub use speclang::SpecError;
use speclang::{
    push_nonzero_seed, render_spec, render_vocabulary, split_spec, ParamDoc, ParsedParams, SpecCtx,
};

/// A traffic pattern, described symbolically.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Every ordered pair of distinct vertices exactly once — the paper's
    /// "universal" regime, and the pattern whose block-streamed stretch
    /// report is bit-identical to `routemodel::stretch_factor`.
    AllPairs,
    /// `messages` source/destination pairs drawn uniformly (sources spread
    /// evenly, destinations uniform per message).
    Uniform { messages: u64, seed: u64 },
    /// Uniform sources, Zipf-popular destinations: destination popularity
    /// follows `rank^(-exponent)` over a seeded random ranking of the
    /// vertices — the classic hotspot skew of datacenter/web traffic.
    Zipf {
        messages: u64,
        exponent: f64,
        seed: u64,
    },
    /// `rounds` random permutations: in each round every vertex sends one
    /// message to its image (fixed points skipped) — the all-to-all pattern
    /// of parallel-machine traffic studies.
    Permutations { rounds: u32, seed: u64 },
    /// Every root broadcasts one message to every other vertex (one-to-all
    /// tree traffic; congestion concentrates near the roots).
    Broadcast { roots: Vec<NodeId> },
    /// `sources` distinct random sources, each sending to `dests_per_source`
    /// uniform destinations (duplicates allowed).  The pattern for graphs too
    /// large to touch every source: BFS cost scales with `sources`, not `n`.
    SampledSources {
        sources: usize,
        dests_per_source: usize,
        seed: u64,
    },
    /// Adversarial: every message crosses the id-space bisection (sources in
    /// `[0, n/2)` send to uniform destinations in `[n/2, n)` and vice versa).
    /// On row-major grids that is the row bisection; on hypercubes the
    /// top-dimension cut — the pattern that saturates the network's weakest
    /// cut instead of spreading load like `uniform` does.
    Bisection { messages: u64, seed: u64 },
    /// Adversarial: derangement rounds by id rotation.  Round 0 rotates by
    /// `n/2` (every vertex targets its id-space antipode, crossing the
    /// bisection); later rounds rotate by seeded random offsets in
    /// `[1, n-1]`.  Every round makes each router both a source and a unique
    /// destination, so per-pair landmark detours that popularity-skewed
    /// patterns average away all land at once, with zero fixed points.
    WorstPerm { rounds: u32, seed: u64 },
    /// The Theorem 1 probe set: every constrained vertex sends to every
    /// target vertex — the pairs whose first ports the planted matrix
    /// forces.  Compiles against a built Theorem 1 instance, not a bare
    /// vertex count (see `scenario::run_scenario`).
    ConstrainedProbes,
}

impl WorkloadSpec {
    /// Every workload family key, in vocabulary order.
    pub const ALL_KEYS: [&'static str; 9] = [
        "all-pairs",
        "uniform",
        "zipf",
        "permutations",
        "broadcast",
        "sampled-sources",
        "bisection",
        "worstperm",
        "constrained-probes",
    ];

    /// Short family key for reports (`uniform`, `zipf`, ...).
    pub fn key(&self) -> &'static str {
        match self {
            WorkloadSpec::AllPairs => "all-pairs",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Permutations { .. } => "permutations",
            WorkloadSpec::Broadcast { .. } => "broadcast",
            WorkloadSpec::SampledSources { .. } => "sampled-sources",
            WorkloadSpec::Bisection { .. } => "bisection",
            WorkloadSpec::WorstPerm { .. } => "worstperm",
            WorkloadSpec::ConstrainedProbes => "constrained-probes",
        }
    }

    /// Checks the pattern against the vertex count it will run on.
    ///
    /// [`WorkloadSpec::compile`] asserts these conditions (they are
    /// programmer errors on the direct API), but scenario files make them
    /// user-reachable — loaders and runners call this first so a typo'd
    /// root or a one-vertex graph surfaces as a typed message, not a panic.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if n < 2 {
            return Err(format!(
                "traffic needs at least two vertices (the graph has {n})"
            ));
        }
        if let WorkloadSpec::Broadcast { roots } = self {
            if let Some(&r) = roots.iter().find(|&&r| r >= n) {
                return Err(format!(
                    "broadcast root {r} is out of range for a graph on {n} vertices"
                ));
            }
        }
        Ok(())
    }

    /// Compiles the pattern against a graph on `n` vertices.
    ///
    /// Panics on [`WorkloadSpec::ConstrainedProbes`], which needs the built
    /// instance's constrained/target vertex sets — the scenario runner
    /// compiles it via `WorkloadPlan::from_pairs`.
    pub fn compile(&self, n: usize) -> WorkloadPlan {
        assert!(n >= 2, "traffic needs at least two vertices");
        match self {
            WorkloadSpec::AllPairs => WorkloadPlan {
                n,
                messages: (n as u64) * (n as u64 - 1),
                kind: PlanKind::AllPairs,
            },
            WorkloadSpec::Uniform { messages, seed } => {
                compile_per_source_rng(n, *messages, *seed, |rng, s| {
                    // uniform destination != source
                    loop {
                        let t = rng.gen_range(n);
                        if t != s {
                            return t as u32;
                        }
                    }
                })
            }
            WorkloadSpec::Zipf {
                messages,
                exponent,
                seed,
            } => {
                // Popularity rank -> vertex via a seeded permutation, then a
                // CDF over rank^(-exponent); one binary search per message.
                let mut rng = Xoshiro256::new(seed ^ 0x0021_D7AC_AC0F_u64);
                let by_rank = rng.permutation(n);
                let mut cdf = Vec::with_capacity(n);
                let mut acc = 0.0f64;
                for rank in 0..n {
                    acc += ((rank + 1) as f64).powf(-exponent);
                    cdf.push(acc);
                }
                let total = acc;
                compile_per_source_rng(n, *messages, *seed, move |rng, s| loop {
                    let x = rng.next_f64() * total;
                    let rank = cdf.partition_point(|&c| c < x).min(n - 1);
                    let t = by_rank[rank];
                    if t != s {
                        return t as u32;
                    }
                })
            }
            WorkloadSpec::Permutations { rounds, seed } => {
                let mut rng = Xoshiro256::new(*seed);
                let mut pairs = Vec::with_capacity(*rounds as usize * n);
                for _ in 0..*rounds {
                    let perm = rng.permutation(n);
                    for (u, &t) in perm.iter().enumerate() {
                        if u != t {
                            pairs.push((u, t));
                        }
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            WorkloadSpec::Broadcast { roots } => {
                let mut pairs = Vec::with_capacity(roots.len() * (n - 1));
                for &root in roots {
                    assert!(root < n, "broadcast root {root} out of range");
                    for v in 0..n {
                        if v != root {
                            pairs.push((root, v));
                        }
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            WorkloadSpec::SampledSources {
                sources,
                dests_per_source,
                seed,
            } => {
                let mut rng = Xoshiro256::new(*seed);
                let mut srcs = rng.sample_indices(n, (*sources).min(n));
                srcs.sort_unstable();
                let mut pairs = Vec::with_capacity(srcs.len() * dests_per_source);
                for &s in &srcs {
                    let mut local = per_source_rng(*seed, s);
                    for _ in 0..*dests_per_source {
                        loop {
                            let t = local.gen_range(n);
                            if t != s {
                                pairs.push((s, t));
                                break;
                            }
                        }
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            WorkloadSpec::Bisection { messages, seed } => {
                // Halves by vertex id: `[0, half)` vs `[half, n)`.  Sources
                // are spread evenly like `uniform`; every destination lands
                // in the *other* half, so every message crosses the cut.
                let half = n / 2;
                compile_per_source_rng(n, *messages, *seed, move |rng, s| {
                    if s < half {
                        (half + rng.gen_range(n - half)) as u32
                    } else {
                        rng.gen_range(half) as u32
                    }
                })
            }
            WorkloadSpec::WorstPerm { rounds, seed } => {
                let mut rng = Xoshiro256::new(*seed);
                let mut pairs = Vec::with_capacity(*rounds as usize * n);
                for round in 0..*rounds {
                    // Rotations by d ∈ [1, n-1] are derangements; the first
                    // round pins the antipodal rotation n/2.
                    let d = if round == 0 {
                        (n / 2).max(1)
                    } else {
                        1 + rng.gen_range(n - 1)
                    };
                    for s in 0..n {
                        pairs.push((s, (s + d) % n));
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            WorkloadSpec::ConstrainedProbes => panic!(
                "constrained-probes compiles against a built Theorem 1 instance, \
                 not a bare vertex count"
            ),
        }
    }
}

impl WorkloadSpec {
    /// The parameters each workload family accepts — the single source of
    /// truth shared by the parser, the canonical formatter and
    /// [`WorkloadSpec::vocabulary`].
    pub fn param_docs(key: &str) -> &'static [ParamDoc] {
        const MESSAGES: ParamDoc = ParamDoc {
            name: "messages",
            values: "message count >= 1 (scientific notation ok: 1e6)",
        };
        const SEED: ParamDoc = ParamDoc {
            name: "seed",
            values: "u64 seed of the pattern (default 0; 0x hex ok)",
        };
        const ROUNDS: ParamDoc = ParamDoc {
            name: "rounds",
            values: "permutation rounds >= 1",
        };
        match key {
            "uniform" | "bisection" => &[MESSAGES, SEED],
            "zipf" => &[
                MESSAGES,
                ParamDoc {
                    name: "s",
                    values: "Zipf exponent > 0 (default 1)",
                },
                SEED,
            ],
            "permutations" | "worstperm" => &[ROUNDS, SEED],
            "broadcast" => &[ParamDoc {
                name: "roots",
                values: "':'-separated root vertex ids, e.g. roots=0:1:2:3",
            }],
            "sampled-sources" => &[
                ParamDoc {
                    name: "sources",
                    values: "distinct source count >= 1",
                },
                ParamDoc {
                    name: "per",
                    values: "destinations per source >= 1",
                },
                SEED,
            ],
            _ => &[],
        }
    }

    /// The full valid-spec vocabulary, one block per workload key.
    pub fn vocabulary() -> String {
        let entries: Vec<(&str, &[ParamDoc])> = Self::ALL_KEYS
            .into_iter()
            .map(|key| (key, Self::param_docs(key)))
            .collect();
        render_vocabulary(
            "valid workload specs (omitted params = defaults; counts are required):",
            &entries,
        )
    }

    /// Parses a spec string (`key` or `key?name=value&...`).
    pub fn parse(spec: &str) -> Result<WorkloadSpec, SpecError> {
        let (key, query) = split_spec(spec);
        let key = Self::ALL_KEYS
            .into_iter()
            .find(|k| *k == key)
            .ok_or_else(|| SpecError::UnknownKey {
                domain: "workload",
                key: key.to_string(),
            })?;
        let ctx = SpecCtx::new("workload", key);
        let p = ParsedParams::new(ctx, spec, query, Self::param_docs(key))?;
        match key {
            "all-pairs" => Ok(WorkloadSpec::AllPairs),
            "constrained-probes" => Ok(WorkloadSpec::ConstrainedProbes),
            "uniform" => Ok(WorkloadSpec::Uniform {
                messages: p.count("messages")?,
                seed: p.seed()?,
            }),
            "bisection" => Ok(WorkloadSpec::Bisection {
                messages: p.count("messages")?,
                seed: p.seed()?,
            }),
            "zipf" => {
                let exponent = match p.get("s") {
                    Some(value) => {
                        let s = ctx.parse_f64("s", value, "a float > 0")?;
                        // NaN must fail too, hence the negated form.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if !(s > 0.0) {
                            return Err(ctx.invalid("s", value, "a float > 0"));
                        }
                        s
                    }
                    None => 1.0,
                };
                Ok(WorkloadSpec::Zipf {
                    messages: p.count("messages")?,
                    exponent,
                    seed: p.seed()?,
                })
            }
            "permutations" | "worstperm" => {
                let rounds = p.count("rounds")?;
                let rounds = u32::try_from(rounds)
                    .map_err(|_| ctx.invalid("rounds", &rounds.to_string(), "a u32"))?;
                let seed = p.seed()?;
                Ok(if key == "permutations" {
                    WorkloadSpec::Permutations { rounds, seed }
                } else {
                    WorkloadSpec::WorstPerm { rounds, seed }
                })
            }
            "broadcast" => {
                let value = p.get("roots").ok_or_else(|| ctx.missing("roots"))?;
                let mut roots = Vec::new();
                for part in value.split(':') {
                    let root: usize = part.parse().map_err(|_| {
                        ctx.invalid("roots", value, "':'-separated vertex ids, e.g. 0:1:2")
                    })?;
                    roots.push(root);
                }
                Ok(WorkloadSpec::Broadcast { roots })
            }
            "sampled-sources" => Ok(WorkloadSpec::SampledSources {
                sources: p.count("sources")? as usize,
                dests_per_source: p.count("per")? as usize,
                seed: p.seed()?,
            }),
            _ => unreachable!("key validated against ALL_KEYS"),
        }
    }

    /// The canonical string form: the bare key for parameterless patterns,
    /// `key?name=value&...` otherwise, omitting default-valued parameters.
    /// `parse` of the result reproduces `self` exactly.
    pub fn spec_string(&self) -> String {
        let mut params: Vec<String> = Vec::new();
        match self {
            WorkloadSpec::AllPairs | WorkloadSpec::ConstrainedProbes => {}
            WorkloadSpec::Uniform { messages, seed }
            | WorkloadSpec::Bisection { messages, seed } => {
                params.push(format!("messages={messages}"));
                push_nonzero_seed(&mut params, *seed);
            }
            WorkloadSpec::Zipf {
                messages,
                exponent,
                seed,
            } => {
                params.push(format!("messages={messages}"));
                if *exponent != 1.0 {
                    params.push(format!("s={exponent}"));
                }
                push_nonzero_seed(&mut params, *seed);
            }
            WorkloadSpec::Permutations { rounds, seed }
            | WorkloadSpec::WorstPerm { rounds, seed } => {
                params.push(format!("rounds={rounds}"));
                push_nonzero_seed(&mut params, *seed);
            }
            WorkloadSpec::Broadcast { roots } => {
                let rendered: Vec<String> = roots.iter().map(|r| r.to_string()).collect();
                params.push(format!("roots={}", rendered.join(":")));
            }
            WorkloadSpec::SampledSources {
                sources,
                dests_per_source,
                seed,
            } => {
                params.push(format!("sources={sources}"));
                params.push(format!("per={dests_per_source}"));
                push_nonzero_seed(&mut params, *seed);
            }
        }
        render_spec(self.key(), &params)
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec_string())
    }
}

/// A deterministic per-source random stream: mixing the source id into the
/// seed keeps the plan independent of how sources are sharded over workers.
fn per_source_rng(seed: u64, s: usize) -> Xoshiro256 {
    Xoshiro256::new(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Spreads `messages` over the sources (source `s` gets `⌊m/n⌋ + 1` messages
/// when `s < m mod n`) and draws each destination from the source's own
/// stream.
fn compile_per_source_rng(
    n: usize,
    messages: u64,
    seed: u64,
    mut draw: impl FnMut(&mut Xoshiro256, usize) -> u32,
) -> WorkloadPlan {
    let base = messages / n as u64;
    let extra = (messages % n as u64) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut dests = Vec::with_capacity(messages as usize);
    offsets.push(0u64);
    for s in 0..n {
        let count = base + u64::from(s < extra);
        let mut rng = per_source_rng(seed, s);
        for _ in 0..count {
            dests.push(draw(&mut rng, s));
        }
        offsets.push(dests.len() as u64);
    }
    WorkloadPlan {
        n,
        messages,
        kind: PlanKind::Explicit { offsets, dests },
    }
}

/// The pre-codec name of [`WorkloadSpec`], kept so existing call sites read
/// naturally; the two are the same type.
pub type Workload = WorkloadSpec;

/// Backing of a compiled plan.
#[derive(Debug, Clone, PartialEq)]
enum PlanKind {
    AllPairs,
    /// CSR over sources: destinations of `s` are
    /// `dests[offsets[s]..offsets[s + 1]]`.
    Explicit {
        offsets: Vec<u64>,
        dests: Vec<u32>,
    },
}

/// The destinations of one source, as the engine consumes them.
#[derive(Debug, Clone, Copy)]
pub enum SourceDests<'a> {
    /// Every vertex except the source itself.
    AllOthers,
    /// An explicit list (may contain the source; the engine skips it).
    List(&'a [u32]),
}

/// A compiled traffic pattern: per-source destination lists over `n`
/// vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    n: usize,
    messages: u64,
    kind: PlanKind,
}

impl WorkloadPlan {
    /// Groups an explicit pair list by source (stable within each source) —
    /// a counting sort, `O(n + messages)`.
    ///
    /// Self-pairs `(s, s)` are dropped here, like every generated pattern
    /// drops them, so [`WorkloadPlan::messages`] counts exactly the messages
    /// the engine will attempt (`routed + skipped_unreachable == messages`).
    pub fn from_pairs(n: usize, pairs: Vec<(NodeId, NodeId)>) -> Self {
        let mut counts = vec![0u64; n + 1];
        let mut kept = 0usize;
        for &(s, t) in &pairs {
            assert!(s < n && t < n, "pair ({s},{t}) out of range for n={n}");
            if s != t {
                counts[s + 1] += 1;
                kept += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut dests = vec![0u32; kept];
        for &(s, t) in &pairs {
            if s != t {
                dests[cursor[s] as usize] = t as u32;
                cursor[s] += 1;
            }
        }
        WorkloadPlan {
            n,
            messages: kept as u64,
            kind: PlanKind::Explicit { offsets, dests },
        }
    }

    /// Number of vertices the plan was compiled for.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total planned messages.  Self-pairs are excluded at compile time for
    /// every plan, and unreachable destinations are only discovered — and
    /// counted — by the engine, so a run always satisfies
    /// `routed_messages + skipped_unreachable == messages`.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The destinations of source `s`.
    pub fn dests(&self, s: NodeId) -> SourceDests<'_> {
        match &self.kind {
            PlanKind::AllPairs => SourceDests::AllOthers,
            PlanKind::Explicit { offsets, dests } => {
                SourceDests::List(&dests[offsets[s] as usize..offsets[s + 1] as usize])
            }
        }
    }

    /// Whether the plan is the implicit all-pairs sweep.
    pub fn is_all_pairs(&self) -> bool {
        matches!(self.kind, PlanKind::AllPairs)
    }

    /// Heap bytes held by the plan (the engine reports this as part of its
    /// peak-memory proxy).
    pub fn bytes(&self) -> u64 {
        match &self.kind {
            PlanKind::AllPairs => 0,
            PlanKind::Explicit { offsets, dests } => {
                (offsets.capacity() * 8 + dests.capacity() * 4) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explicit_pairs(plan: &WorkloadPlan) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for s in 0..plan.num_nodes() {
            match plan.dests(s) {
                SourceDests::AllOthers => panic!("expected explicit plan"),
                SourceDests::List(list) => out.extend(list.iter().map(|&t| (s, t as usize))),
            }
        }
        out
    }

    #[test]
    fn all_pairs_plan_counts_every_ordered_pair() {
        let plan = Workload::AllPairs.compile(10);
        assert!(plan.is_all_pairs());
        assert_eq!(plan.messages(), 90);
        assert!(matches!(plan.dests(3), SourceDests::AllOthers));
    }

    #[test]
    fn uniform_plan_spreads_sources_and_avoids_self_loops() {
        let plan = Workload::Uniform {
            messages: 103,
            seed: 7,
        }
        .compile(10);
        let pairs = explicit_pairs(&plan);
        assert_eq!(pairs.len(), 103);
        assert_eq!(plan.messages(), 103);
        for &(s, t) in &pairs {
            assert_ne!(s, t);
            assert!(t < 10);
        }
        // 103 = 10*10 + 3: sources 0..3 get 11 messages, the rest 10.
        for s in 0..10usize {
            let count = pairs.iter().filter(|&&(a, _)| a == s).count();
            assert_eq!(count, if s < 3 { 11 } else { 10 });
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for w in [
            Workload::Uniform {
                messages: 500,
                seed: 3,
            },
            Workload::Zipf {
                messages: 500,
                exponent: 1.1,
                seed: 3,
            },
            Workload::Permutations { rounds: 4, seed: 3 },
            Workload::SampledSources {
                sources: 12,
                dests_per_source: 9,
                seed: 3,
            },
        ] {
            assert_eq!(w.compile(40), w.compile(40), "{}", w.key());
        }
        let a = Workload::Uniform {
            messages: 500,
            seed: 3,
        }
        .compile(40);
        let b = Workload::Uniform {
            messages: 500,
            seed: 4,
        }
        .compile(40);
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_concentrates_on_popular_destinations() {
        let n = 64;
        let plan = Workload::Zipf {
            messages: 20_000,
            exponent: 1.2,
            seed: 11,
        }
        .compile(n);
        let mut hits = vec![0u64; n];
        for (_, t) in explicit_pairs(&plan) {
            hits[t] += 1;
        }
        let mut sorted = hits.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top4: u64 = sorted[..4].iter().sum();
        let total: u64 = sorted.iter().sum();
        assert_eq!(total, 20_000);
        assert!(
            top4 as f64 > 0.3 * total as f64,
            "top-4 destinations got only {top4}/{total}"
        );
    }

    #[test]
    fn permutation_rounds_send_at_most_one_message_per_source() {
        let n = 30;
        let rounds = 5;
        let plan = Workload::Permutations { rounds, seed: 9 }.compile(n);
        let pairs = explicit_pairs(&plan);
        // Each round is a permutation minus its fixed points.
        assert!(pairs.len() <= rounds as usize * n);
        assert!(
            pairs.len() >= rounds as usize * (n - 5),
            "too many fixed points"
        );
        for s in 0..n {
            let sent = pairs.iter().filter(|&&(a, _)| a == s).count();
            assert!(sent <= rounds as usize);
        }
    }

    #[test]
    fn broadcast_reaches_everyone_once_per_root() {
        let plan = Workload::Broadcast { roots: vec![2, 5] }.compile(8);
        let pairs = explicit_pairs(&plan);
        assert_eq!(pairs.len(), 14);
        for root in [2usize, 5] {
            let mut dests: Vec<usize> = pairs
                .iter()
                .filter(|&&(s, _)| s == root)
                .map(|&(_, t)| t)
                .collect();
            dests.sort_unstable();
            let expected: Vec<usize> = (0..8).filter(|&v| v != root).collect();
            assert_eq!(dests, expected);
        }
    }

    #[test]
    fn sampled_sources_touch_few_sources() {
        let plan = Workload::SampledSources {
            sources: 6,
            dests_per_source: 11,
            seed: 21,
        }
        .compile(200);
        let pairs = explicit_pairs(&plan);
        assert_eq!(pairs.len(), 66);
        let mut srcs: Vec<usize> = pairs.iter().map(|&(s, _)| s).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 6);
    }

    #[test]
    fn bisection_messages_all_cross_the_id_cut() {
        for n in [2usize, 3, 16, 65] {
            let plan = WorkloadSpec::Bisection {
                messages: 400,
                seed: 5,
            }
            .compile(n);
            let pairs = explicit_pairs(&plan);
            assert_eq!(pairs.len(), 400);
            let half = n / 2;
            for &(s, t) in &pairs {
                assert_ne!(s, t);
                assert_ne!(s < half, t < half, "({s},{t}) stays inside a half (n={n})");
            }
        }
    }

    #[test]
    fn worstperm_rounds_are_derangements_and_start_antipodal() {
        let n = 30;
        let rounds = 4u32;
        let plan = WorkloadSpec::WorstPerm { rounds, seed: 7 }.compile(n);
        let pairs = explicit_pairs(&plan);
        // Rotations have no fixed points: every vertex sends every round.
        assert_eq!(pairs.len(), rounds as usize * n);
        for &(s, t) in &pairs {
            assert_ne!(s, t);
        }
        for s in 0..n {
            let sent: Vec<usize> = pairs
                .iter()
                .filter(|&&(a, _)| a == s)
                .map(|&(_, t)| t)
                .collect();
            assert_eq!(sent.len(), rounds as usize);
            // Round 0 is the pinned antipodal rotation.
            assert_eq!(sent[0], (s + n / 2) % n);
        }
        // Each round is a permutation of the destinations.
        for round in 0..rounds as usize {
            let mut dests: Vec<usize> = (0..n)
                .map(|s| {
                    pairs
                        .iter()
                        .filter(|&&(a, _)| a == s)
                        .map(|&(_, t)| t)
                        .nth(round)
                        .unwrap()
                })
                .collect();
            dests.sort_unstable();
            assert_eq!(dests, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn workload_specs_round_trip_through_the_codec() {
        let specs = [
            "all-pairs",
            "constrained-probes",
            "uniform?messages=20000&seed=1",
            "uniform?messages=5",
            "zipf?messages=200000&s=1.1&seed=5",
            "zipf?messages=100",
            "permutations?rounds=64&seed=13",
            "broadcast?roots=0:1:2:3",
            "sampled-sources?sources=64&per=256&seed=11",
            "bisection?messages=1024&seed=2",
            "worstperm?rounds=8&seed=3",
        ];
        for s in specs {
            let spec = WorkloadSpec::parse(s).unwrap();
            assert_eq!(spec.spec_string(), s, "canonical form of '{s}'");
            assert_eq!(WorkloadSpec::parse(&spec.spec_string()).unwrap(), spec);
            assert_eq!(format!("{spec}"), s);
        }
        // Non-canonical inputs normalize: default values drop out, counts in
        // scientific notation parse to the same plan.
        let spec = WorkloadSpec::parse("zipf?messages=1e6&s=1.0&seed=0").unwrap();
        assert_eq!(spec.spec_string(), "zipf?messages=1000000");
        assert_eq!(
            WorkloadSpec::parse("uniform?messages=2.5e3").unwrap(),
            WorkloadSpec::Uniform {
                messages: 2500,
                seed: 0
            }
        );
    }

    #[test]
    fn workload_codec_rejections_are_typed() {
        assert!(matches!(
            WorkloadSpec::parse("teleport"),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("uniform?bogus=1"),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("all-pairs?seed=1"),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("uniform"),
            Err(SpecError::MissingParam { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("uniform?messages=0"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("uniform?messages=1.5"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("zipf?messages=10&s=-1"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("broadcast"),
            Err(SpecError::MissingParam { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("broadcast?roots=0:x"),
            Err(SpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("worstperm?rounds"),
            Err(SpecError::Malformed { .. })
        ));
    }

    #[test]
    fn every_documented_workload_param_is_accepted() {
        // Anti-drift: a name the docs list must never be rejected as
        // unknown, and a name they do not list must be.
        let probe_value = |name: &str| match name {
            "roots" => "0:1",
            _ => "3",
        };
        for key in WorkloadSpec::ALL_KEYS {
            let docs = WorkloadSpec::param_docs(key);
            for p in docs {
                // Probe with every required param present so only the
                // probed one can fail.
                let all: Vec<String> = docs
                    .iter()
                    .map(|d| format!("{}={}", d.name, probe_value(d.name)))
                    .collect();
                let spec = format!("{}?{}", key, all.join("&"));
                match WorkloadSpec::parse(&spec) {
                    Ok(_) => {}
                    Err(SpecError::UnknownParam { .. }) => {
                        panic!("documented param '{}' rejected: {spec}", p.name)
                    }
                    Err(other) => panic!("documented param {spec} failed oddly: {other}"),
                }
            }
            let bogus = format!("{key}?definitely-not-a-param=1");
            assert!(
                matches!(
                    WorkloadSpec::parse(&bogus),
                    Err(SpecError::UnknownParam { .. })
                ),
                "{bogus} must be rejected as unknown"
            );
        }
    }

    #[test]
    fn workload_vocabulary_covers_every_key_and_param() {
        let vocab = WorkloadSpec::vocabulary();
        for key in WorkloadSpec::ALL_KEYS {
            assert!(vocab.contains(key), "missing key {key}");
            for p in WorkloadSpec::param_docs(key) {
                assert!(vocab.contains(p.name), "missing param {} of {key}", p.name);
            }
        }
    }

    #[test]
    fn from_pairs_drops_self_pairs_from_the_message_count() {
        let plan = WorkloadPlan::from_pairs(4, vec![(2, 2), (0, 1), (3, 3)]);
        assert_eq!(plan.messages(), 1);
        match plan.dests(2) {
            SourceDests::List(l) => assert!(l.is_empty()),
            _ => panic!(),
        }
        match plan.dests(0) {
            SourceDests::List(l) => assert_eq!(l, &[1]),
            _ => panic!(),
        }
    }

    #[test]
    fn from_pairs_groups_by_source_keeping_order() {
        let plan = WorkloadPlan::from_pairs(5, vec![(3, 1), (0, 4), (3, 2), (0, 1), (3, 1)]);
        match plan.dests(3) {
            SourceDests::List(l) => assert_eq!(l, &[1, 2, 1]),
            _ => panic!(),
        }
        match plan.dests(0) {
            SourceDests::List(l) => assert_eq!(l, &[4, 1]),
            _ => panic!(),
        }
        match plan.dests(1) {
            SourceDests::List(l) => assert!(l.is_empty()),
            _ => panic!(),
        }
        assert_eq!(plan.messages(), 5);
        assert!(plan.bytes() > 0);
    }
}
