//! Traffic-scenario generators: who sends how many messages to whom.
//!
//! A [`Workload`] describes a traffic pattern symbolically; compiling it
//! against a vertex count yields a [`WorkloadPlan`] — the per-source
//! destination lists the sharded engine streams over.  Compilation is
//! deterministic per seed: the same workload on the same graph produces the
//! same messages on every machine and for every worker count, which is what
//! makes the engine's reports reproducible.
//!
//! All patterns except [`Workload::AllPairs`] compile to an explicit
//! CSR-shaped plan (`offsets` + flat destination array, grouped by source in
//! source order).  `AllPairs` stays implicit — materializing `n (n − 1)`
//! pairs would defeat the point of block streaming.

use graphkit::{NodeId, Xoshiro256};

/// A traffic pattern, described symbolically.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Every ordered pair of distinct vertices exactly once — the paper's
    /// "universal" regime, and the pattern whose block-streamed stretch
    /// report is bit-identical to `routemodel::stretch_factor`.
    AllPairs,
    /// `messages` source/destination pairs drawn uniformly (sources spread
    /// evenly, destinations uniform per message).
    Uniform { messages: u64, seed: u64 },
    /// Uniform sources, Zipf-popular destinations: destination popularity
    /// follows `rank^(-exponent)` over a seeded random ranking of the
    /// vertices — the classic hotspot skew of datacenter/web traffic.
    Zipf {
        messages: u64,
        exponent: f64,
        seed: u64,
    },
    /// `rounds` random permutations: in each round every vertex sends one
    /// message to its image (fixed points skipped) — the all-to-all pattern
    /// of parallel-machine traffic studies.
    Permutations { rounds: u32, seed: u64 },
    /// Every root broadcasts one message to every other vertex (one-to-all
    /// tree traffic; congestion concentrates near the roots).
    Broadcast { roots: Vec<NodeId> },
    /// `sources` distinct random sources, each sending to `dests_per_source`
    /// uniform destinations (duplicates allowed).  The pattern for graphs too
    /// large to touch every source: BFS cost scales with `sources`, not `n`.
    SampledSources {
        sources: usize,
        dests_per_source: usize,
        seed: u64,
    },
    /// An explicit pair list (used e.g. for the Theorem 1 constrained-vertex
    /// probes); grouped by source at compile time, list order kept within
    /// each source.
    Pairs(Vec<(NodeId, NodeId)>),
}

impl Workload {
    /// Short key for reports.
    pub fn key(&self) -> &'static str {
        match self {
            Workload::AllPairs => "all-pairs",
            Workload::Uniform { .. } => "uniform",
            Workload::Zipf { .. } => "zipf",
            Workload::Permutations { .. } => "permutations",
            Workload::Broadcast { .. } => "broadcast",
            Workload::SampledSources { .. } => "sampled-sources",
            Workload::Pairs(_) => "pairs",
        }
    }

    /// Compiles the pattern against a graph on `n` vertices.
    pub fn compile(&self, n: usize) -> WorkloadPlan {
        assert!(n >= 2, "traffic needs at least two vertices");
        match self {
            Workload::AllPairs => WorkloadPlan {
                n,
                messages: (n as u64) * (n as u64 - 1),
                kind: PlanKind::AllPairs,
            },
            Workload::Uniform { messages, seed } => {
                compile_per_source_rng(n, *messages, *seed, |rng, s| {
                    // uniform destination != source
                    loop {
                        let t = rng.gen_range(n);
                        if t != s {
                            return t as u32;
                        }
                    }
                })
            }
            Workload::Zipf {
                messages,
                exponent,
                seed,
            } => {
                // Popularity rank -> vertex via a seeded permutation, then a
                // CDF over rank^(-exponent); one binary search per message.
                let mut rng = Xoshiro256::new(seed ^ 0x0021_D7AC_AC0F_u64);
                let by_rank = rng.permutation(n);
                let mut cdf = Vec::with_capacity(n);
                let mut acc = 0.0f64;
                for rank in 0..n {
                    acc += ((rank + 1) as f64).powf(-exponent);
                    cdf.push(acc);
                }
                let total = acc;
                compile_per_source_rng(n, *messages, *seed, move |rng, s| loop {
                    let x = rng.next_f64() * total;
                    let rank = cdf.partition_point(|&c| c < x).min(n - 1);
                    let t = by_rank[rank];
                    if t != s {
                        return t as u32;
                    }
                })
            }
            Workload::Permutations { rounds, seed } => {
                let mut rng = Xoshiro256::new(*seed);
                let mut pairs = Vec::with_capacity(*rounds as usize * n);
                for _ in 0..*rounds {
                    let perm = rng.permutation(n);
                    for (u, &t) in perm.iter().enumerate() {
                        if u != t {
                            pairs.push((u, t));
                        }
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            Workload::Broadcast { roots } => {
                let mut pairs = Vec::with_capacity(roots.len() * (n - 1));
                for &root in roots {
                    assert!(root < n, "broadcast root {root} out of range");
                    for v in 0..n {
                        if v != root {
                            pairs.push((root, v));
                        }
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            Workload::SampledSources {
                sources,
                dests_per_source,
                seed,
            } => {
                let mut rng = Xoshiro256::new(*seed);
                let mut srcs = rng.sample_indices(n, (*sources).min(n));
                srcs.sort_unstable();
                let mut pairs = Vec::with_capacity(srcs.len() * dests_per_source);
                for &s in &srcs {
                    let mut local = per_source_rng(*seed, s);
                    for _ in 0..*dests_per_source {
                        loop {
                            let t = local.gen_range(n);
                            if t != s {
                                pairs.push((s, t));
                                break;
                            }
                        }
                    }
                }
                WorkloadPlan::from_pairs(n, pairs)
            }
            Workload::Pairs(pairs) => WorkloadPlan::from_pairs(n, pairs.clone()),
        }
    }
}

/// A deterministic per-source random stream: mixing the source id into the
/// seed keeps the plan independent of how sources are sharded over workers.
fn per_source_rng(seed: u64, s: usize) -> Xoshiro256 {
    Xoshiro256::new(seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Spreads `messages` over the sources (source `s` gets `⌊m/n⌋ + 1` messages
/// when `s < m mod n`) and draws each destination from the source's own
/// stream.
fn compile_per_source_rng(
    n: usize,
    messages: u64,
    seed: u64,
    mut draw: impl FnMut(&mut Xoshiro256, usize) -> u32,
) -> WorkloadPlan {
    let base = messages / n as u64;
    let extra = (messages % n as u64) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut dests = Vec::with_capacity(messages as usize);
    offsets.push(0u64);
    for s in 0..n {
        let count = base + u64::from(s < extra);
        let mut rng = per_source_rng(seed, s);
        for _ in 0..count {
            dests.push(draw(&mut rng, s));
        }
        offsets.push(dests.len() as u64);
    }
    WorkloadPlan {
        n,
        messages,
        kind: PlanKind::Explicit { offsets, dests },
    }
}

/// Backing of a compiled plan.
#[derive(Debug, Clone, PartialEq)]
enum PlanKind {
    AllPairs,
    /// CSR over sources: destinations of `s` are
    /// `dests[offsets[s]..offsets[s + 1]]`.
    Explicit {
        offsets: Vec<u64>,
        dests: Vec<u32>,
    },
}

/// The destinations of one source, as the engine consumes them.
#[derive(Debug, Clone, Copy)]
pub enum SourceDests<'a> {
    /// Every vertex except the source itself.
    AllOthers,
    /// An explicit list (may contain the source; the engine skips it).
    List(&'a [u32]),
}

/// A compiled traffic pattern: per-source destination lists over `n`
/// vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    n: usize,
    messages: u64,
    kind: PlanKind,
}

impl WorkloadPlan {
    /// Groups an explicit pair list by source (stable within each source) —
    /// a counting sort, `O(n + messages)`.
    ///
    /// Self-pairs `(s, s)` are dropped here, like every generated pattern
    /// drops them, so [`WorkloadPlan::messages`] counts exactly the messages
    /// the engine will attempt (`routed + skipped_unreachable == messages`).
    pub fn from_pairs(n: usize, pairs: Vec<(NodeId, NodeId)>) -> Self {
        let mut counts = vec![0u64; n + 1];
        let mut kept = 0usize;
        for &(s, t) in &pairs {
            assert!(s < n && t < n, "pair ({s},{t}) out of range for n={n}");
            if s != t {
                counts[s + 1] += 1;
                kept += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut dests = vec![0u32; kept];
        for &(s, t) in &pairs {
            if s != t {
                dests[cursor[s] as usize] = t as u32;
                cursor[s] += 1;
            }
        }
        WorkloadPlan {
            n,
            messages: kept as u64,
            kind: PlanKind::Explicit { offsets, dests },
        }
    }

    /// Number of vertices the plan was compiled for.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total planned messages.  Self-pairs are excluded at compile time for
    /// every plan, and unreachable destinations are only discovered — and
    /// counted — by the engine, so a run always satisfies
    /// `routed_messages + skipped_unreachable == messages`.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The destinations of source `s`.
    pub fn dests(&self, s: NodeId) -> SourceDests<'_> {
        match &self.kind {
            PlanKind::AllPairs => SourceDests::AllOthers,
            PlanKind::Explicit { offsets, dests } => {
                SourceDests::List(&dests[offsets[s] as usize..offsets[s + 1] as usize])
            }
        }
    }

    /// Whether the plan is the implicit all-pairs sweep.
    pub fn is_all_pairs(&self) -> bool {
        matches!(self.kind, PlanKind::AllPairs)
    }

    /// Heap bytes held by the plan (the engine reports this as part of its
    /// peak-memory proxy).
    pub fn bytes(&self) -> u64 {
        match &self.kind {
            PlanKind::AllPairs => 0,
            PlanKind::Explicit { offsets, dests } => {
                (offsets.capacity() * 8 + dests.capacity() * 4) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explicit_pairs(plan: &WorkloadPlan) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for s in 0..plan.num_nodes() {
            match plan.dests(s) {
                SourceDests::AllOthers => panic!("expected explicit plan"),
                SourceDests::List(list) => out.extend(list.iter().map(|&t| (s, t as usize))),
            }
        }
        out
    }

    #[test]
    fn all_pairs_plan_counts_every_ordered_pair() {
        let plan = Workload::AllPairs.compile(10);
        assert!(plan.is_all_pairs());
        assert_eq!(plan.messages(), 90);
        assert!(matches!(plan.dests(3), SourceDests::AllOthers));
    }

    #[test]
    fn uniform_plan_spreads_sources_and_avoids_self_loops() {
        let plan = Workload::Uniform {
            messages: 103,
            seed: 7,
        }
        .compile(10);
        let pairs = explicit_pairs(&plan);
        assert_eq!(pairs.len(), 103);
        assert_eq!(plan.messages(), 103);
        for &(s, t) in &pairs {
            assert_ne!(s, t);
            assert!(t < 10);
        }
        // 103 = 10*10 + 3: sources 0..3 get 11 messages, the rest 10.
        for s in 0..10usize {
            let count = pairs.iter().filter(|&&(a, _)| a == s).count();
            assert_eq!(count, if s < 3 { 11 } else { 10 });
        }
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for w in [
            Workload::Uniform {
                messages: 500,
                seed: 3,
            },
            Workload::Zipf {
                messages: 500,
                exponent: 1.1,
                seed: 3,
            },
            Workload::Permutations { rounds: 4, seed: 3 },
            Workload::SampledSources {
                sources: 12,
                dests_per_source: 9,
                seed: 3,
            },
        ] {
            assert_eq!(w.compile(40), w.compile(40), "{}", w.key());
        }
        let a = Workload::Uniform {
            messages: 500,
            seed: 3,
        }
        .compile(40);
        let b = Workload::Uniform {
            messages: 500,
            seed: 4,
        }
        .compile(40);
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_concentrates_on_popular_destinations() {
        let n = 64;
        let plan = Workload::Zipf {
            messages: 20_000,
            exponent: 1.2,
            seed: 11,
        }
        .compile(n);
        let mut hits = vec![0u64; n];
        for (_, t) in explicit_pairs(&plan) {
            hits[t] += 1;
        }
        let mut sorted = hits.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top4: u64 = sorted[..4].iter().sum();
        let total: u64 = sorted.iter().sum();
        assert_eq!(total, 20_000);
        assert!(
            top4 as f64 > 0.3 * total as f64,
            "top-4 destinations got only {top4}/{total}"
        );
    }

    #[test]
    fn permutation_rounds_send_at_most_one_message_per_source() {
        let n = 30;
        let rounds = 5;
        let plan = Workload::Permutations { rounds, seed: 9 }.compile(n);
        let pairs = explicit_pairs(&plan);
        // Each round is a permutation minus its fixed points.
        assert!(pairs.len() <= rounds as usize * n);
        assert!(
            pairs.len() >= rounds as usize * (n - 5),
            "too many fixed points"
        );
        for s in 0..n {
            let sent = pairs.iter().filter(|&&(a, _)| a == s).count();
            assert!(sent <= rounds as usize);
        }
    }

    #[test]
    fn broadcast_reaches_everyone_once_per_root() {
        let plan = Workload::Broadcast { roots: vec![2, 5] }.compile(8);
        let pairs = explicit_pairs(&plan);
        assert_eq!(pairs.len(), 14);
        for root in [2usize, 5] {
            let mut dests: Vec<usize> = pairs
                .iter()
                .filter(|&&(s, _)| s == root)
                .map(|&(_, t)| t)
                .collect();
            dests.sort_unstable();
            let expected: Vec<usize> = (0..8).filter(|&v| v != root).collect();
            assert_eq!(dests, expected);
        }
    }

    #[test]
    fn sampled_sources_touch_few_sources() {
        let plan = Workload::SampledSources {
            sources: 6,
            dests_per_source: 11,
            seed: 21,
        }
        .compile(200);
        let pairs = explicit_pairs(&plan);
        assert_eq!(pairs.len(), 66);
        let mut srcs: Vec<usize> = pairs.iter().map(|&(s, _)| s).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 6);
    }

    #[test]
    fn from_pairs_drops_self_pairs_from_the_message_count() {
        let plan = WorkloadPlan::from_pairs(4, vec![(2, 2), (0, 1), (3, 3)]);
        assert_eq!(plan.messages(), 1);
        match plan.dests(2) {
            SourceDests::List(l) => assert!(l.is_empty()),
            _ => panic!(),
        }
        match plan.dests(0) {
            SourceDests::List(l) => assert_eq!(l, &[1]),
            _ => panic!(),
        }
    }

    #[test]
    fn from_pairs_groups_by_source_keeping_order() {
        let plan = WorkloadPlan::from_pairs(5, vec![(3, 1), (0, 4), (3, 2), (0, 1), (3, 1)]);
        match plan.dests(3) {
            SourceDests::List(l) => assert_eq!(l, &[1, 2, 1]),
            _ => panic!(),
        }
        match plan.dests(0) {
            SourceDests::List(l) => assert_eq!(l, &[4, 1]),
            _ => panic!(),
        }
        match plan.dests(1) {
            SourceDests::List(l) => assert!(l.is_empty()),
            _ => panic!(),
        }
        assert_eq!(plan.messages(), 5);
        assert!(plan.bytes() > 0);
    }
}
