//! # trafficlab
//!
//! A sharded, parallel routing-**workload engine**: drive any
//! `routeschemes::CompactScheme` under configurable traffic scenarios and
//! measure what the paper's theory bounds — stretch, per-router memory — plus
//! what it abstracts away: per-arc congestion, route-length distributions,
//! sustained messages per second.
//!
//! The paper studies the cost of routing when *every* pair of nodes may
//! exchange messages.  A dense `n × n` distance matrix caps that experiment
//! at a few thousand nodes; `trafficlab` instead streams the evaluation in
//! bounded per-block memory (in the delay/space spirit of enumeration
//! complexity): source nodes are sharded into blocks, every worker computes
//! the block's BFS rows (narrow `u8` rows where they fit), routes the
//! block's messages with zero per-message allocations, and per-source
//! stretch partials are folded in source order — so the all-pairs report is
//! **bit-identical** to the dense sweep while peak memory stays
//! `O(workers · block_rows · n)`.
//!
//! Layers:
//!
//! * [`workload`] — scenario generators behind the [`WorkloadSpec`] codec:
//!   `all-pairs`, `uniform`, `zipf?messages=1e6&s=1.2`, `permutations`,
//!   `broadcast`, `sampled-sources`, the adversarial `bisection` /
//!   `worstperm` patterns, and the Theorem 1 `constrained-probes`;
//! * [`engine`] — the batched parallel executor and its [`WorkloadReport`];
//!   it routes over a `graphkit::GraphView` (dead links masked), bucketing
//!   per-message fates in [`engine::OutcomeCounts`] instead of aborting;
//! * [`churn`] — the failure/repair axis ([`ChurnSpec`]): round-structured
//!   fail → measure degraded → repair → measure recovered execution, the
//!   resilience rows of a scenario report;
//! * [`metrics`] — streaming congestion counters and length histograms;
//! * [`scenario`] — declarative scenarios ([`ScenarioSpec`]: graph spec ×
//!   workload spec × scheme specs) over the scheme registry, with table,
//!   congestion-vs-stretch and JSON reports (see the `trafficlab` binary);
//! * [`files`] — the TOML scenario-file codec; the built-in scenario book
//!   itself is data under `examples/scenarios/`.

#![forbid(unsafe_code)]

pub mod churn;
pub mod engine;
pub mod files;
pub mod metrics;
pub mod scenario;
pub mod workload;

pub use churn::{run_churn, ChurnError, ChurnRound, ChurnRun, ChurnSpec};
pub use engine::{
    run_workload, stretch_factor_blocked, EngineConfig, OutcomeCounts, WorkloadReport,
};
pub use files::ScenarioFileError;
pub use metrics::{CongestionCounters, CongestionReport, LengthHistogram};
pub use scenario::{
    find_scenario, landmark_strict, landmark_with_k, named_scenarios, run_scenario,
    suggest_scenarios, Case, CaseResult, CaseSpec, GraphSpec, ResilienceResult, Scenario,
    ScenarioReport, ScenarioSpec, StretchMode, LANDMARK_SWEEP_KS, SAMPLED_STRETCH_PAIRS,
    SAMPLED_STRETCH_THRESHOLD,
};
pub use workload::{SourceDests, Workload, WorkloadPlan, WorkloadSpec};
