//! # trafficlab
//!
//! A sharded, parallel routing-**workload engine**: drive any
//! `routeschemes::CompactScheme` under configurable traffic scenarios and
//! measure what the paper's theory bounds — stretch, per-router memory — plus
//! what it abstracts away: per-arc congestion, route-length distributions,
//! sustained messages per second.
//!
//! The paper studies the cost of routing when *every* pair of nodes may
//! exchange messages.  A dense `n × n` distance matrix caps that experiment
//! at a few thousand nodes; `trafficlab` instead streams the evaluation in
//! bounded per-block memory (in the delay/space spirit of enumeration
//! complexity): source nodes are sharded into blocks, every worker computes
//! the block's BFS rows (narrow `u8` rows where they fit), routes the
//! block's messages with zero per-message allocations, and per-source
//! stretch partials are folded in source order — so the all-pairs report is
//! **bit-identical** to the dense sweep while peak memory stays
//! `O(workers · block_rows · n)`.
//!
//! Layers:
//!
//! * [`workload`] — scenario generators: `all-pairs`, `uniform`, `zipf`,
//!   `permutations`, `broadcast`, `sampled-sources`, explicit pair lists
//!   (Theorem 1 probes);
//! * [`engine`] — the batched parallel executor and its [`WorkloadReport`];
//! * [`metrics`] — streaming congestion counters and length histograms;
//! * [`scenario`] — named scenarios over the scheme registry, with table and
//!   JSON reports (see the `trafficlab` binary).

pub mod engine;
pub mod metrics;
pub mod scenario;
pub mod workload;

pub use engine::{run_workload, stretch_factor_blocked, EngineConfig, WorkloadReport};
pub use metrics::{CongestionCounters, CongestionReport, LengthHistogram};
pub use scenario::{
    find_scenario, landmark_strict, landmark_with_k, named_scenarios, run_scenario, Case,
    CaseResult, CaseWorkload, GraphSpec, Scenario, ScenarioReport, LANDMARK_SWEEP_KS,
};
pub use workload::{SourceDests, Workload, WorkloadPlan};
