//! Scenario files: the TOML codec for [`ScenarioSpec`], and the built-in
//! scenario book — which is itself data under `examples/scenarios/`.
//!
//! A scenario file is a small TOML(-subset, see [`speclang::toml`]) document
//! whose string fields are spec-language values:
//!
//! ```toml
//! name = "smoke"
//! description = "every registry scheme exercised once at n = 1024"
//!
//! [[case]]
//! graph = "random?n=1024&seed=0xC5A"
//! workload = "uniform?messages=20000&seed=1"
//! schemes = ["table", "tree", "interval", "landmark"]
//! block_rows = 0          # optional engine knob (0 = engine default)
//! churn = "churn?kill=0.01&rounds=8"   # optional failure/repair axis
//! ```
//!
//! `ScenarioSpec::parse_toml` and `ScenarioSpec::to_toml` are inverse up to
//! canonicalization (`parse_toml ∘ to_toml = id`, pinned by round-trip
//! tests), and unknown keys are rejected rather than ignored so a typo'd
//! knob cannot silently run the default.
//!
//! The built-in scenarios ([`builtin_scenarios`], what `named_scenarios()`
//! returns) are embedded from their files at compile time via
//! `include_str!` — the TOML files under `examples/scenarios/` *are* the
//! single source of truth, not a rendering of in-code definitions.

use crate::churn::ChurnSpec;
use crate::scenario::{CaseSpec, GraphSpec, ScenarioSpec, StretchMode};
use crate::workload::WorkloadSpec;
use routeschemes::SchemeSpec;
use speclang::toml::{self, escape_str, Section, TomlError, Value};

/// Why a scenario file failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioFileError {
    /// The text is not valid TOML(-subset).
    Toml(TomlError),
    /// The TOML is well formed but does not describe a scenario: a missing
    /// or mistyped field, an unknown key, or a spec string that fails its
    /// codec.  `context` names where (`case 2, field 'graph'`).
    Scenario { context: String, message: String },
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFileError::Toml(e) => write!(f, "{e}"),
            ScenarioFileError::Scenario { context, message } => {
                write!(f, "{context}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioFileError {}

impl From<TomlError> for ScenarioFileError {
    fn from(e: TomlError) -> Self {
        ScenarioFileError::Toml(e)
    }
}

fn bad<T>(
    context: impl Into<String>,
    message: impl std::fmt::Display,
) -> Result<T, ScenarioFileError> {
    Err(ScenarioFileError::Scenario {
        context: context.into(),
        message: message.to_string(),
    })
}

fn require_str<'a>(
    table: &'a toml::Table,
    key: &str,
    context: &str,
) -> Result<&'a str, ScenarioFileError> {
    match table.get(key) {
        Some(v) => v.as_str().ok_or(()).or_else(|_| {
            bad(
                context,
                format!("'{key}' must be a string, got {}", v.type_name()),
            )
        }),
        None => bad(context, format!("missing required key '{key}'")),
    }
}

impl ScenarioSpec {
    /// Parses a scenario file.
    pub fn parse_toml(text: &str) -> Result<ScenarioSpec, ScenarioFileError> {
        let doc = toml::parse(text)?;
        let root_ctx = "scenario";
        for key in doc.root.keys() {
            if !matches!(key, "name" | "description") {
                return bad(
                    root_ctx,
                    format!("unknown key '{key}' (valid: name, description)"),
                );
            }
        }
        let name = require_str(&doc.root, "name", root_ctx)?.to_string();
        let description = match doc.root.get("description") {
            Some(v) => v
                .as_str()
                .ok_or(())
                .or_else(|_| {
                    bad(
                        root_ctx,
                        format!("'description' must be a string, got {}", v.type_name()),
                    )
                })?
                .to_string(),
            None => String::new(),
        };
        let mut cases = Vec::new();
        for section in &doc.sections {
            if !(section.is_array && section.name == "case") {
                return bad(
                    format!("section at line {}", section.line),
                    format!(
                        "unknown section '[{}]' (only [[case]] is valid)",
                        section.name
                    ),
                );
            }
            cases.push(parse_case(section, cases.len() + 1)?);
        }
        if cases.is_empty() {
            return bad(root_ctx, "a scenario needs at least one [[case]]");
        }
        Ok(ScenarioSpec {
            name,
            description,
            cases,
        })
    }

    /// Renders the scenario as a canonical TOML scenario file;
    /// `parse_toml` of the result reproduces `self` exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = \"{}\"\n", escape_str(&self.name)));
        if !self.description.is_empty() {
            out.push_str(&format!(
                "description = \"{}\"\n",
                escape_str(&self.description)
            ));
        }
        for case in &self.cases {
            out.push_str("\n[[case]]\n");
            out.push_str(&format!(
                "graph = \"{}\"\n",
                escape_str(&case.graph.spec_string())
            ));
            out.push_str(&format!(
                "workload = \"{}\"\n",
                escape_str(&case.workload.spec_string())
            ));
            let schemes: Vec<String> = case
                .schemes
                .iter()
                .map(|s| format!("\"{}\"", escape_str(&s.spec_string())))
                .collect();
            out.push_str(&format!("schemes = [{}]\n", schemes.join(", ")));
            if case.block_rows != 0 {
                out.push_str(&format!("block_rows = {}\n", case.block_rows));
            }
            if let Some(churn) = &case.churn {
                out.push_str(&format!(
                    "churn = \"{}\"\n",
                    escape_str(&churn.spec_string())
                ));
            }
            if case.stretch != StretchMode::Auto {
                out.push_str(&format!(
                    "stretch = \"{}\"\n",
                    escape_str(&case.stretch.spec_string())
                ));
            }
            if case.verify {
                out.push_str("verify = true\n");
            }
        }
        out
    }
}

fn parse_case(section: &Section, index: usize) -> Result<CaseSpec, ScenarioFileError> {
    let ctx = format!("case {index} (line {})", section.line);
    let table = &section.table;
    for key in table.keys() {
        if !matches!(
            key,
            "graph" | "workload" | "schemes" | "block_rows" | "churn" | "stretch" | "verify"
        ) {
            return bad(
                &ctx,
                format!(
                    "unknown key '{key}' \
                     (valid: graph, workload, schemes, block_rows, churn, stretch, verify)"
                ),
            );
        }
    }
    let graph = GraphSpec::parse(require_str(table, "graph", &ctx)?)
        .or_else(|e| bad(format!("{ctx}, field 'graph'"), e))?;
    let workload = WorkloadSpec::parse(require_str(table, "workload", &ctx)?)
        .or_else(|e| bad(format!("{ctx}, field 'workload'"), e))?;
    // Cross-field validation at load time: a broadcast root past the graph
    // or a sub-2-vertex graph would otherwise hit the compile-time asserts
    // as a panic mid-run.
    if let Err(msg) = workload.validate(graph.num_nodes()) {
        return bad(format!("{ctx}, field 'workload'"), msg);
    }
    let schemes_value = match table.get("schemes") {
        Some(v) => v,
        None => return bad(&ctx, "missing required key 'schemes'"),
    };
    let Some(items) = schemes_value.as_array() else {
        return bad(
            &ctx,
            format!(
                "'schemes' must be an array of spec strings, got {}",
                schemes_value.type_name()
            ),
        );
    };
    if items.is_empty() {
        return bad(&ctx, "'schemes' must name at least one scheme spec");
    }
    let mut schemes = Vec::with_capacity(items.len());
    for item in items {
        let Some(s) = item.as_str() else {
            return bad(
                &ctx,
                format!(
                    "'schemes' entries must be strings, got {}",
                    item.type_name()
                ),
            );
        };
        schemes.push(SchemeSpec::parse(s).or_else(|e| bad(format!("{ctx}, field 'schemes'"), e))?);
    }
    let block_rows = match table.get("block_rows") {
        None => 0,
        Some(Value::Int(v)) if *v >= 0 => *v as usize,
        Some(v) => {
            return bad(
                &ctx,
                format!("'block_rows' must be a non-negative integer, got {v:?}"),
            )
        }
    };
    let churn = match table.get("churn") {
        None => None,
        Some(v) => {
            let Some(s) = v.as_str() else {
                return bad(
                    &ctx,
                    format!("'churn' must be a churn spec string, got {}", v.type_name()),
                );
            };
            Some(ChurnSpec::parse(s).or_else(|e| bad(format!("{ctx}, field 'churn'"), e))?)
        }
    };
    let stretch = match table.get("stretch") {
        None => StretchMode::Auto,
        Some(v) => {
            let Some(s) = v.as_str() else {
                return bad(
                    &ctx,
                    format!(
                        "'stretch' must be a stretch-mode string, got {}",
                        v.type_name()
                    ),
                );
            };
            StretchMode::parse(s).or_else(|e| bad(format!("{ctx}, field 'stretch'"), e))?
        }
    };
    let verify = match table.get("verify") {
        None => false,
        Some(Value::Bool(v)) => *v,
        Some(v) => {
            return bad(
                &ctx,
                format!("'verify' must be a boolean, got {}", v.type_name()),
            )
        }
    };
    Ok(CaseSpec {
        graph,
        workload,
        schemes,
        block_rows,
        churn,
        stretch,
        verify,
    })
}

/// The `[[case]]` key vocabulary of scenario files, for `trafficlab specs` —
/// kept next to [`parse_case`] so the printed keys cannot drift from the
/// parsed ones (the CI specs-sync gate greps this output).
pub fn case_key_vocabulary() -> String {
    let mut out = String::from("valid case keys ([[case]] sections of a scenario file):\n");
    let keys: [(&str, &str); 7] = [
        ("graph", "graph spec string (required)"),
        ("workload", "workload spec string (required)"),
        (
            "schemes",
            "array of scheme spec strings (required, non-empty)",
        ),
        (
            "block_rows",
            "engine block-rows override (0 = engine default)",
        ),
        (
            "churn",
            "churn spec string: failure/repair rounds after the baseline",
        ),
        ("stretch", "stretch-mode string (default: auto)"),
        (
            "verify",
            "boolean: statically verify built schemes (routecheck) before measuring",
        ),
    ];
    for (key, doc) in keys {
        out.push_str(&format!("  {key:<12}{doc}\n"));
    }
    out
}

/// The built-in scenario book, embedded from `examples/scenarios/*.toml` at
/// compile time.  Order is the `trafficlab list` order.
const BUILTIN_SCENARIO_FILES: [(&str, &str); 11] = [
    (
        "smoke",
        include_str!("../../../examples/scenarios/smoke.toml"),
    ),
    (
        "uniform-1m",
        include_str!("../../../examples/scenarios/uniform-1m.toml"),
    ),
    (
        "sharded-130k",
        include_str!("../../../examples/scenarios/sharded-130k.toml"),
    ),
    (
        "landmark-130k",
        include_str!("../../../examples/scenarios/landmark-130k.toml"),
    ),
    (
        "landmark-sweep",
        include_str!("../../../examples/scenarios/landmark-sweep.toml"),
    ),
    (
        "zipf-hotspot",
        include_str!("../../../examples/scenarios/zipf-hotspot.toml"),
    ),
    (
        "broadcast",
        include_str!("../../../examples/scenarios/broadcast.toml"),
    ),
    (
        "permutation-cube",
        include_str!("../../../examples/scenarios/permutation-cube.toml"),
    ),
    (
        "theorem1",
        include_str!("../../../examples/scenarios/theorem1.toml"),
    ),
    (
        "adversarial",
        include_str!("../../../examples/scenarios/adversarial.toml"),
    ),
    (
        "churn",
        include_str!("../../../examples/scenarios/churn.toml"),
    ),
];

/// Parses the embedded built-in scenario files.  Panics on a malformed
/// file — that is a build defect, caught by the test suite, not a runtime
/// condition a caller could handle.
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    BUILTIN_SCENARIO_FILES
        .iter()
        .map(|(name, text)| {
            let spec = ScenarioSpec::parse_toml(text)
                .unwrap_or_else(|e| panic!("built-in scenario file '{name}.toml' is broken: {e}"));
            assert_eq!(
                spec.name, *name,
                "scenario file '{name}.toml' names itself '{}'",
                spec.name
            );
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routeschemes::SchemeKind;

    #[test]
    fn builtins_parse_and_cover_the_book() {
        let all = builtin_scenarios();
        assert_eq!(all.len(), BUILTIN_SCENARIO_FILES.len());
        for s in &all {
            assert!(!s.cases.is_empty(), "{}", s.name);
            assert!(!s.description.is_empty(), "{}", s.name);
        }
        // The adversarial patterns ride in the book.
        let adv = all.iter().find(|s| s.name == "adversarial").unwrap();
        let workloads: Vec<&str> = adv.cases.iter().map(|c| c.workload.key()).collect();
        assert!(workloads.contains(&"bisection"));
        assert!(workloads.contains(&"worstperm"));
    }

    #[test]
    fn toml_round_trips_through_the_codec() {
        for s in builtin_scenarios() {
            let rendered = s.to_toml();
            let reparsed = ScenarioSpec::parse_toml(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of '{}' failed: {e}\n{rendered}", s.name));
            assert_eq!(reparsed, s, "round trip of '{}'", s.name);
        }
    }

    #[test]
    fn parse_accepts_the_documented_shape() {
        let spec = ScenarioSpec::parse_toml(
            r#"
name = "mini"
description = "one case"

[[case]]
graph = "grid?rows=4&cols=5"
workload = "bisection?messages=100&seed=2"
schemes = ["grid", "tree"]
block_rows = 8
"#,
        )
        .unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.cases.len(), 1);
        let case = &spec.cases[0];
        assert_eq!(case.graph, GraphSpec::Grid { rows: 4, cols: 5 });
        assert_eq!(
            case.workload,
            WorkloadSpec::Bisection {
                messages: 100,
                seed: 2
            }
        );
        assert_eq!(case.schemes[0].kind(), SchemeKind::DimensionOrder);
        assert_eq!(case.block_rows, 8);
    }

    #[test]
    fn churn_field_parses_and_round_trips() {
        let spec = ScenarioSpec::parse_toml(
            r#"
name = "churny"
description = "failure axis"

[[case]]
graph = "random?n=64&seed=1"
workload = "all-pairs"
schemes = ["tree"]
churn = "churn?kill=0.05&rounds=2&seed=9"
"#,
        )
        .unwrap();
        let churn = spec.cases[0].churn.as_ref().unwrap();
        assert_eq!(
            *churn,
            crate::churn::ChurnSpec {
                kill: 0.05,
                rounds: 2,
                seed: 9
            }
        );
        let rendered = spec.to_toml();
        assert!(rendered.contains("churn = \"churn?kill=0.05&rounds=2&seed=9\""));
        assert_eq!(ScenarioSpec::parse_toml(&rendered).unwrap(), spec);
        // The built-in churn scenario carries the axis.
        let book = builtin_scenarios();
        let churny = book.iter().find(|s| s.name == "churn").unwrap();
        assert!(churny.cases.iter().all(|c| c.churn.is_some()));
    }

    #[test]
    fn stretch_field_parses_and_round_trips() {
        let spec = ScenarioSpec::parse_toml(
            r#"
name = "sampled"
description = "stretch axis"

[[case]]
graph = "random?n=64&seed=1"
workload = "uniform?messages=100&seed=2"
schemes = ["tree"]
stretch = "sampled?pairs=4096&seed=3"
"#,
        )
        .unwrap();
        assert_eq!(
            spec.cases[0].stretch,
            StretchMode::Sampled {
                pairs: 4096,
                seed: 3
            }
        );
        let rendered = spec.to_toml();
        assert!(rendered.contains("stretch = \"sampled?pairs=4096&seed=3\""));
        assert_eq!(ScenarioSpec::parse_toml(&rendered).unwrap(), spec);
        // Auto is the default: the built-in book omits the key entirely.
        for s in builtin_scenarios() {
            assert!(!s.to_toml().contains("stretch = "), "{}", s.name);
        }
        // A bad mode fails with its codec's typed error, in context.
        let err = ScenarioSpec::parse_toml(
            "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\n\
             workload = \"all-pairs\"\nschemes = [\"tree\"]\nstretch = \"guess\"",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown stretch key 'guess'"),
            "{err}"
        );
        let err = ScenarioSpec::parse_toml(
            "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\n\
             workload = \"all-pairs\"\nschemes = [\"tree\"]\nstretch = 3",
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("'stretch' must be a stretch-mode string"),
            "{err}"
        );
    }

    #[test]
    fn verify_field_parses_and_round_trips() {
        let spec = ScenarioSpec::parse_toml(
            r#"
name = "verified"
description = "static-verification axis"

[[case]]
graph = "random?n=64&seed=1"
workload = "uniform?messages=100&seed=2"
schemes = ["tree"]
verify = true
"#,
        )
        .unwrap();
        assert!(spec.cases[0].verify);
        let rendered = spec.to_toml();
        assert!(rendered.contains("verify = true"));
        assert_eq!(ScenarioSpec::parse_toml(&rendered).unwrap(), spec);
        // false is the default and the canonical rendering omits the key.
        let off = ScenarioSpec::parse_toml(
            "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\n\
             workload = \"all-pairs\"\nschemes = [\"tree\"]",
        )
        .unwrap();
        assert!(!off.cases[0].verify);
        assert!(!off.to_toml().contains("verify"));
        // A mistyped value is a contextual error, not a silent default.
        let err = ScenarioSpec::parse_toml(
            "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\n\
             workload = \"all-pairs\"\nschemes = [\"tree\"]\nverify = \"yes\"",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("'verify' must be a boolean"),
            "{err}"
        );
        // The smoke scenario gates every scheme it measures.
        let book = builtin_scenarios();
        let smoke = book.iter().find(|s| s.name == "smoke").unwrap();
        assert!(smoke.cases.iter().all(|c| c.verify));
    }

    #[test]
    fn typo_and_type_errors_are_contextual_not_silent() {
        let cases = [
            ("name = \"x\"", "at least one [[case]]"),
            ("nam = \"x\"", "unknown key 'nam'"),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\nworkload = \"all-pairs\"\nschemes = [\"tree\"]\nblocks = 1",
                "unknown key 'blocks'",
            ),
            (
                "name = \"x\"\n[engine]\nthreads = 2",
                "only [[case]] is valid",
            ),
            (
                "name = \"x\"\n[[case]]\nworkload = \"all-pairs\"\nschemes = [\"tree\"]",
                "missing required key 'graph'",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"warp?n=4\"\nworkload = \"all-pairs\"\nschemes = [\"tree\"]",
                "unknown graph key 'warp'",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\nworkload = \"zipf?s=1.1\"\nschemes = [\"tree\"]",
                "requires parameter 'messages'",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\nworkload = \"all-pairs\"\nschemes = []",
                "at least one scheme",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\nworkload = \"all-pairs\"\nschemes = [\"warp-drive\"]",
                "unknown scheme key 'warp-drive'",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = 7\nworkload = \"all-pairs\"\nschemes = [\"tree\"]",
                "'graph' must be a string",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\nworkload = \"all-pairs\"\nschemes = [\"tree\"]\nchurn = 3",
                "'churn' must be a churn spec string",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=2&cols=2\"\nworkload = \"all-pairs\"\nschemes = [\"tree\"]\nchurn = \"churn?kill=2\"",
                "bad value '2' for 'kill'",
            ),
            // Cross-field validation: these used to reach compile's asserts
            // as panics once --file made them user input.
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=32&cols=32\"\nworkload = \"broadcast?roots=0:5000\"\nschemes = [\"tree\"]",
                "broadcast root 5000 is out of range",
            ),
            (
                "name = \"x\"\n[[case]]\ngraph = \"grid?rows=1&cols=1\"\nworkload = \"all-pairs\"\nschemes = [\"tree\"]",
                "at least two vertices",
            ),
        ];
        for (text, needle) in cases {
            let err = ScenarioSpec::parse_toml(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "expected '{needle}' in error for:\n{text}\ngot: {msg}"
            );
        }
        // Raw TOML breakage surfaces as a line-numbered Toml error.
        let err = ScenarioSpec::parse_toml("name = \"x\"\nbroken line").unwrap_err();
        assert!(matches!(
            err,
            ScenarioFileError::Toml(TomlError { line: 2, .. })
        ));
    }
}
