//! The sharded, parallel workload executor.
//!
//! [`run_workload`] drives one routing function over one compiled
//! [`WorkloadPlan`]:
//!
//! 1. the sources that actually send messages are grouped into **blocks** of
//!    consecutive vertex ids (at most [`EngineConfig::block_rows`] per
//!    block);
//! 2. blocks are handed out to `std::thread::scope` workers in contiguous
//!    chunks; every worker owns one [`BfsScratch`], one reusable
//!    [`DistanceBlock`] of block-local BFS rows, one [`BatchScratch`] for the
//!    lock-step batch kernel and its own metric counters — after warm-up the
//!    inner loop performs **zero allocations per message**, and peak memory
//!    is `O(workers · block_rows · n)` instead of the dense matrix's `n²`;
//! 3. stretch is accumulated into **one [`StretchAccumulator`] per source**
//!    and the per-source partials are folded in source order, so for the
//!    all-pairs workload the resulting [`StretchReport`] is **bit-identical**
//!    to `routemodel::stretch_factor` over the dense [`DistanceMatrix`] — for
//!    every worker count and block size (the property tests pin this);
//! 4. congestion counters and route-length histograms are merged by integer
//!    addition, which is order-insensitive, so the whole
//!    [`WorkloadReport`] is deterministic.
//!
//! [`DistanceMatrix`]: graphkit::DistanceMatrix

use crate::metrics::{CongestionCounters, CongestionReport, LengthHistogram};
use crate::workload::{SourceDests, WorkloadPlan};
use graphkit::{BfsScratch, DistanceBlock, GraphView, INFINITY};
use routemodel::{
    default_hop_limit, route_batch_into, BatchScratch, DeliveryOutcome, RoutingError,
    RoutingFunction, StretchAccumulator, StretchReport,
};
use std::time::Instant;

/// Tuning knobs of the executor.  The defaults are right for tests and
/// moderate graphs; large sweeps mostly tune `block_rows` (smaller blocks for
/// sparse-source workloads, so no BFS row is computed for a silent source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker count; `0` uses `std::thread::available_parallelism`.
    pub threads: usize,
    /// Maximum source rows per distance block; `0` picks 64.
    pub block_rows: usize,
    /// Whether to count per-arc congestion (costs `2m` `u64`s per worker).
    pub track_congestion: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            block_rows: 0,
            track_congestion: true,
        }
    }
}

impl EngineConfig {
    fn effective_threads(&self, blocks: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|x| x.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, blocks.max(1))
    }

    fn effective_block_rows(&self) -> usize {
        if self.block_rows == 0 {
            64
        } else {
            self.block_rows
        }
    }
}

/// Per-message fate counters over one workload run.
///
/// On a healthy graph every attempted message is delivered and the three
/// failure buckets stay zero; on a degraded [`GraphView`] the split between
/// [`DeliveryOutcome::LinkDown`] drops and [`DeliveryOutcome::HopLimit`]
/// loops is the headline number of the churn reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Messages that reached their destination.
    pub delivered: u64,
    /// Messages dropped on a dead link.
    pub link_down: u64,
    /// Messages that exhausted the hop budget (forwarding loop).
    pub hop_limit: u64,
    /// Messages delivered at the wrong vertex.
    pub wrong_delivery: u64,
}

impl OutcomeCounts {
    /// Buckets one message's fate.
    pub fn record(&mut self, outcome: DeliveryOutcome) {
        match outcome {
            DeliveryOutcome::Delivered => self.delivered += 1,
            DeliveryOutcome::LinkDown { .. } => self.link_down += 1,
            DeliveryOutcome::HopLimit { .. } => self.hop_limit += 1,
            DeliveryOutcome::WrongDelivery { .. } => self.wrong_delivery += 1,
        }
    }

    /// Integer-adds another worker's counters (order-insensitive).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.delivered += other.delivered;
        self.link_down += other.link_down;
        self.hop_limit += other.hop_limit;
        self.wrong_delivery += other.wrong_delivery;
    }

    /// The bucket named by a [`DeliveryOutcome`] machine code (see
    /// [`DeliveryOutcome::ALL_CODES`]); `None` for an unknown code.  JSON
    /// renderers iterate the codes through this accessor so their keys
    /// cannot drift from the model's vocabulary.
    pub fn by_code(&self, code: &str) -> Option<u64> {
        match code {
            "delivered" => Some(self.delivered),
            "link_down" => Some(self.link_down),
            "hop_limit" => Some(self.hop_limit),
            "wrong_delivery" => Some(self.wrong_delivery),
            _ => None,
        }
    }

    /// Messages attempted (delivered or not; unreachable skips excluded).
    pub fn attempted(&self) -> u64 {
        self.delivered + self.link_down + self.hop_limit + self.wrong_delivery
    }

    /// Fraction of attempted messages that arrived; `1.0` on an empty run so
    /// an idle source never reads as an outage.
    pub fn delivery_rate(&self) -> f64 {
        let attempted = self.attempted();
        if attempted == 0 {
            1.0
        } else {
            self.delivered as f64 / attempted as f64
        }
    }
}

/// Everything one workload run measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Stretch over the delivered messages (for the all-pairs workload:
    /// bit-identical to the dense `stretch_factor` report).
    pub stretch: StretchReport,
    /// Messages actually routed and delivered.
    pub routed_messages: u64,
    /// Per-message fate split (partial-delivery reporting on degraded views).
    pub outcomes: OutcomeCounts,
    /// Planned messages dropped because the destination was unreachable.
    pub skipped_unreachable: u64,
    /// Per-arc congestion summary (when tracking was enabled).
    pub congestion: Option<CongestionReport>,
    /// Route-length histogram over delivered messages.
    pub lengths: LengthHistogram,
    /// Number of source blocks processed.
    pub blocks: usize,
    /// Blocks whose BFS rows fit the narrow `u8` representation.
    pub narrow_blocks: usize,
    /// Peak-memory proxy: bytes of the workload plan plus, per worker, the
    /// largest distance block, the batch-routing scratch, the metric
    /// counters and the BFS scratch.  This is what replaces the dense
    /// matrix's `4 n²` bytes.
    pub peak_tracked_bytes: u64,
    /// Wall-clock seconds the engine spent on this run (block BFS plus
    /// routing), measured inside [`run_workload`] so every report row
    /// carries its own throughput.
    pub run_secs: f64,
}

impl WorkloadReport {
    /// Delivered messages per second of engine run time (`0.0` when the run
    /// was too fast for the clock to resolve).
    pub fn messages_per_sec(&self) -> f64 {
        if self.run_secs > 0.0 {
            self.routed_messages as f64 / self.run_secs
        } else {
            0.0
        }
    }
}

/// Equality is over what was *measured*: `run_secs` is wall-clock noise, so
/// the determinism tests can compare whole reports across thread and block
/// choices without tripping on timing.
impl PartialEq for WorkloadReport {
    fn eq(&self, other: &Self) -> bool {
        self.stretch == other.stretch
            && self.routed_messages == other.routed_messages
            && self.outcomes == other.outcomes
            && self.skipped_unreachable == other.skipped_unreachable
            && self.congestion == other.congestion
            && self.lengths == other.lengths
            && self.blocks == other.blocks
            && self.narrow_blocks == other.narrow_blocks
            && self.peak_tracked_bytes == other.peak_tracked_bytes
    }
}

/// One contiguous run of message-sending sources.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Range of indices into the active-source list.
    rank_lo: usize,
    rank_hi: usize,
    /// Range of vertex ids covered by the distance block.
    src_lo: usize,
    rows: usize,
}

/// Per-worker accumulation of everything except the ordered stretch fold.
struct WorkerOut {
    congestion: Option<CongestionCounters>,
    lengths: LengthHistogram,
    outcomes: OutcomeCounts,
    skipped: u64,
    narrow_blocks: usize,
    max_block_bytes: u64,
}

type SourcePartial = Option<Result<StretchAccumulator, RoutingError>>;

/// Runs `plan` against routing function `r` on `g` — a plain [`Graph`] or a
/// degraded [`GraphView`] with dead links masked out.
///
/// The only hard failure is a routing-*model* violation
/// ([`RoutingError::PortOutOfRange`]); messages that loop, drop on a dead
/// link or surface at the wrong vertex are bucketed per outcome in
/// [`WorkloadReport::outcomes`], and stretch/length/congestion metrics cover
/// the delivered messages only.  Unreachable destinations (under the view's
/// distances) are skipped and counted, matching the paper's restriction to
/// connected graphs.
pub fn run_workload<'a, R: RoutingFunction + Sync + ?Sized>(
    g: impl Into<GraphView<'a>>,
    r: &R,
    plan: &WorkloadPlan,
    cfg: &EngineConfig,
) -> Result<WorkloadReport, RoutingError> {
    let view = g.into();
    let n = view.num_nodes();
    assert_eq!(plan.num_nodes(), n, "plan compiled for a different graph");
    let hop_limit = default_hop_limit(n);
    let t0 = Instant::now();

    // Sources that send at least one message, ascending.
    let active: Vec<u32> = (0..n as u32)
        .filter(|&s| match plan.dests(s as usize) {
            SourceDests::AllOthers => true,
            SourceDests::List(l) => !l.is_empty(),
        })
        .collect();

    // Group runs of consecutive active sources into blocks, so sparse
    // workloads never BFS a silent source and dense ones share full blocks.
    let block_rows = cfg.effective_block_rows();
    let mut blocks: Vec<Block> = Vec::new();
    for (rank, &s) in active.iter().enumerate() {
        let extend = blocks
            .last()
            .is_some_and(|b| b.src_lo + b.rows == s as usize && b.rank_hi - b.rank_lo < block_rows);
        if extend {
            let b = blocks.last_mut().unwrap();
            b.rank_hi += 1;
            b.rows += 1;
        } else {
            blocks.push(Block {
                rank_lo: rank,
                rank_hi: rank + 1,
                src_lo: s as usize,
                rows: 1,
            });
        }
    }

    let threads = cfg.effective_threads(blocks.len());
    let mut partials: Vec<SourcePartial> = Vec::new();
    partials.resize_with(active.len(), || None);
    let mut worker_outs: Vec<Option<WorkerOut>> = Vec::new();

    if threads <= 1 {
        let out = run_blocks(
            view,
            r,
            plan,
            &active,
            &blocks,
            &mut partials,
            hop_limit,
            cfg,
        );
        worker_outs.push(Some(out));
    } else {
        worker_outs.resize_with(threads, || None);
        let per_worker = blocks.len().div_ceil(threads);
        // Slice the per-source partials into the contiguous rank ranges the
        // block chunks cover.
        let mut jobs: Vec<(&[Block], &mut [SourcePartial])> = Vec::with_capacity(threads);
        let mut rest: &mut [SourcePartial] = &mut partials;
        for chunk in blocks.chunks(per_worker) {
            let ranks: usize = chunk.iter().map(|b| b.rank_hi - b.rank_lo).sum();
            let (head, tail) = rest.split_at_mut(ranks);
            jobs.push((chunk, head));
            rest = tail;
        }
        std::thread::scope(|scope| {
            for ((chunk, slots), out_slot) in jobs.into_iter().zip(worker_outs.iter_mut()) {
                let active = &active;
                scope.spawn(move || {
                    *out_slot = Some(run_blocks(
                        view, r, plan, active, chunk, slots, hop_limit, cfg,
                    ));
                });
            }
        });
    }

    // Ordered fold of the per-source stretch partials — the step that makes
    // the report bit-identical to the dense sweep.
    let mut total = StretchAccumulator::new();
    for partial in partials.into_iter().flatten() {
        total.merge_after(&partial?);
    }

    let mut congestion = cfg
        .track_congestion
        .then(|| CongestionCounters::for_graph(view.graph()));
    let mut lengths = LengthHistogram::new();
    let mut outcomes = OutcomeCounts::default();
    let mut skipped = 0u64;
    let mut narrow_blocks = 0usize;
    let mut peak = plan.bytes();
    for out in worker_outs.into_iter().flatten() {
        if let (Some(total_c), Some(worker_c)) = (&mut congestion, &out.congestion) {
            total_c.merge(worker_c);
        }
        lengths.merge(&out.lengths);
        outcomes.merge(&out.outcomes);
        skipped += out.skipped;
        narrow_blocks += out.narrow_blocks;
        peak += out.max_block_bytes
            + out.congestion.as_ref().map_or(0, |c| c.bytes())
            + out.lengths.bytes()
            + 4 * n as u64; // BFS scratch queue
    }

    Ok(WorkloadReport {
        stretch: total.into_report(),
        routed_messages: outcomes.delivered,
        outcomes,
        skipped_unreachable: skipped,
        congestion: congestion.map(|c| c.summarize()),
        lengths,
        blocks: blocks.len(),
        narrow_blocks,
        peak_tracked_bytes: peak,
        run_secs: t0.elapsed().as_secs_f64(),
    })
}

/// Processes one worker's chunk of blocks, filling that chunk's per-source
/// partial slots (in rank order).
#[allow(clippy::too_many_arguments)]
fn run_blocks<R: RoutingFunction + Sync + ?Sized>(
    view: GraphView<'_>,
    r: &R,
    plan: &WorkloadPlan,
    active: &[u32],
    blocks: &[Block],
    slots: &mut [SourcePartial],
    hop_limit: usize,
    cfg: &EngineConfig,
) -> WorkerOut {
    let n = view.num_nodes();
    let mut scratch = BfsScratch::with_capacity(n);
    let mut rows = DistanceBlock::new();
    let mut batch = BatchScratch::new();
    let mut routable: Vec<u32> = Vec::new();
    let mut out = WorkerOut {
        congestion: cfg
            .track_congestion
            .then(|| CongestionCounters::for_graph(view.graph())),
        lengths: LengthHistogram::new(),
        outcomes: OutcomeCounts::default(),
        skipped: 0,
        narrow_blocks: 0,
        max_block_bytes: 0,
    };
    let mut slot_idx = 0usize;
    for b in blocks {
        rows.recompute(view, b.src_lo, b.rows, &mut scratch);
        if rows.is_narrow() {
            out.narrow_blocks += 1;
        }
        out.max_block_bytes = out.max_block_bytes.max(rows.bytes() as u64);
        for rank in b.rank_lo..b.rank_hi {
            let s = active[rank] as usize;
            let row = rows.row(s);
            // Keep only reachable destinations, preserving plan order (the
            // dense sweep skips the same pairs at the same positions).
            routable.clear();
            match plan.dests(s) {
                SourceDests::AllOthers => {
                    for t in 0..n {
                        if t == s {
                            continue;
                        }
                        if row.dist(t) == INFINITY {
                            out.skipped += 1;
                        } else {
                            routable.push(t as u32);
                        }
                    }
                }
                SourceDests::List(list) => {
                    for &t in list {
                        if t as usize == s {
                            continue;
                        }
                        if row.dist(t as usize) == INFINITY {
                            out.skipped += 1;
                        } else {
                            routable.push(t);
                        }
                    }
                }
            }
            let mut acc = StretchAccumulator::new();
            let lengths = &mut out.lengths;
            let congestion = &mut out.congestion;
            let outcomes = &mut out.outcomes;
            let result = route_batch_into(
                view,
                r,
                s,
                &routable,
                hop_limit,
                &mut batch,
                congestion.is_some(),
                |t, hops, outcome| {
                    outcomes.record(outcome);
                    // Metrics cover delivered messages only: a dropped
                    // message has no meaningful length or stretch, and its
                    // partial trace would skew the congestion picture.
                    if !outcome.is_delivered() {
                        return;
                    }
                    acc.record(s, t, hops, row.dist(t));
                    lengths.record(hops as usize);
                },
                |u, p| {
                    if let Some(c) = congestion {
                        c.record_hop(u, p);
                    }
                },
            );
            slots[slot_idx] = Some(result.map(|()| acc));
            slot_idx += 1;
        }
    }
    // The batch scratch lives for the worker's whole run; fold it into the
    // same per-worker peak term as the largest distance block.
    out.max_block_bytes += batch.bytes();
    out
}

/// Convenience wrapper: the exact stretch factor over **all pairs**, computed
/// block-by-block without ever materializing the dense distance matrix.
///
/// Bit-identical to `routemodel::stretch_factor` for every `threads` and
/// `block_rows` value; peak memory `O(threads · block_rows · n)`.
pub fn stretch_factor_blocked<'a, R: RoutingFunction + Sync + ?Sized>(
    g: impl Into<GraphView<'a>>,
    r: &R,
    threads: usize,
    block_rows: usize,
) -> Result<StretchReport, RoutingError> {
    let g = g.into();
    let plan = crate::workload::Workload::AllPairs.compile(g.num_nodes());
    let cfg = EngineConfig {
        threads,
        block_rows,
        track_congestion: false,
    };
    run_workload(g, r, &plan, &cfg).map(|rep| rep.stretch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use graphkit::{generators, DistanceMatrix, FailureSet, Graph};
    use routemodel::{stretch_factor_with_threads, Action, Header, TableRouting, TieBreak};

    fn table_routing(g: &Graph) -> TableRouting {
        let dm = DistanceMatrix::all_pairs_sequential(g);
        TableRouting::from_distances(g, &dm, TieBreak::LowestPort)
    }

    #[test]
    fn outcome_codes_cover_every_bucket() {
        // Anti-drift: every machine code of the model resolves to exactly
        // one counter bucket, and together they partition `attempted()`.
        let counts = OutcomeCounts {
            delivered: 1,
            link_down: 2,
            hop_limit: 4,
            wrong_delivery: 8,
        };
        let mut sum = 0;
        for code in DeliveryOutcome::ALL_CODES {
            sum += counts
                .by_code(code)
                .unwrap_or_else(|| panic!("code '{code}' has no bucket"));
        }
        assert_eq!(sum, counts.attempted());
        assert_eq!(counts.by_code("proven"), None);
    }

    fn assert_reports_bit_identical(a: &StretchReport, b: &StretchReport) {
        assert_eq!(a.max_stretch.to_bits(), b.max_stretch.to_bits());
        assert_eq!(a.avg_stretch.to_bits(), b.avg_stretch.to_bits());
        assert_eq!(a.max_pair, b.max_pair);
        assert_eq!(a.max_route_len, b.max_route_len);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn all_pairs_block_stretch_is_bit_identical_to_dense() {
        let g = generators::random_connected(72, 0.07, 33);
        let r = table_routing(&g);
        let dm = DistanceMatrix::all_pairs_sequential(&g);
        let dense = stretch_factor_with_threads(&g, &dm, &r, 1).unwrap();
        for threads in [1usize, 2, 3, 7] {
            for block_rows in [1usize, 5, 16, 100] {
                let blocked = stretch_factor_blocked(&g, &r, threads, block_rows).unwrap();
                assert_reports_bit_identical(&blocked, &dense);
            }
        }
    }

    #[test]
    fn congestion_totals_equal_route_length_sum() {
        // Flow conservation: every hop of every delivered message is counted
        // on exactly one arc.
        let n = 48usize;
        let g = generators::cycle(n);
        let g2 = g.clone();
        let r = routemodel::function::dest_address_routing("cw", move |node, h: &Header| {
            if node == h.dest {
                Action::Deliver
            } else {
                Action::Forward(g2.port_to(node, (node + 1) % n).unwrap())
            }
        });
        let plan = Workload::Uniform {
            messages: 5_000,
            seed: 5,
        }
        .compile(n);
        let rep = run_workload(&g, &r, &plan, &EngineConfig::default()).unwrap();
        let cong = rep.congestion.as_ref().unwrap();
        assert_eq!(cong.total_load, rep.lengths.total_hops());
        assert_eq!(rep.lengths.total(), rep.routed_messages);
        assert_eq!(rep.routed_messages, 5_000);
        assert_eq!(rep.skipped_unreachable, 0);
    }

    #[test]
    fn whole_report_is_identical_across_thread_and_block_choices() {
        let g = generators::random_connected(60, 0.08, 8);
        let r = table_routing(&g);
        let plan = Workload::Zipf {
            messages: 3_000,
            exponent: 1.0,
            seed: 2,
        }
        .compile(60);
        let base = run_workload(
            &g,
            &r,
            &plan,
            &EngineConfig {
                threads: 1,
                block_rows: 4,
                track_congestion: true,
            },
        )
        .unwrap();
        for (threads, block_rows) in [(2usize, 4usize), (3, 1), (5, 17), (2, 64)] {
            let rep = run_workload(
                &g,
                &r,
                &plan,
                &EngineConfig {
                    threads,
                    block_rows,
                    track_congestion: true,
                },
            )
            .unwrap();
            assert_reports_bit_identical(&rep.stretch, &base.stretch);
            assert_eq!(rep.congestion, base.congestion);
            assert_eq!(rep.lengths, base.lengths);
            assert_eq!(rep.routed_messages, base.routed_messages);
        }
    }

    #[test]
    fn sparse_sources_process_few_blocks() {
        let g = generators::random_connected(400, 0.02, 4);
        let r = table_routing(&g);
        let plan = Workload::SampledSources {
            sources: 5,
            dests_per_source: 8,
            seed: 13,
        }
        .compile(400);
        let rep = run_workload(
            &g,
            &r,
            &plan,
            &EngineConfig {
                threads: 2,
                block_rows: 8,
                track_congestion: false,
            },
        )
        .unwrap();
        // 5 scattered sources can need at most 5 blocks — not 400/8 = 50.
        assert!(rep.blocks <= 5, "{} blocks for 5 sources", rep.blocks);
        assert_eq!(rep.routed_messages, 40);
        assert!(rep.congestion.is_none());
        assert!(rep.peak_tracked_bytes > 0);
    }

    #[test]
    fn unreachable_destinations_are_skipped_and_counted() {
        let h = generators::path(4).disjoint_union(&generators::path(4));
        let r = table_routing(&h);
        let plan = Workload::AllPairs.compile(8);
        let rep = run_workload(&h, &r, &plan, &EngineConfig::default()).unwrap();
        // 8·7 ordered pairs, half of them cross the component boundary.
        assert_eq!(rep.routed_messages + rep.skipped_unreachable, 56);
        assert_eq!(rep.skipped_unreachable, 32);
        assert_eq!(rep.stretch.pairs, 24);
    }

    #[test]
    fn errors_report_the_earliest_source() {
        let g = generators::cycle(12);
        let r = routemodel::function::dest_address_routing("half-loopy", |node, h: &Header| {
            if node == h.dest {
                Action::Deliver
            } else if node == 0 {
                Action::Forward(0)
            } else {
                Action::Forward(usize::MAX)
            }
        });
        let dm = DistanceMatrix::all_pairs_sequential(&g);
        let dense = stretch_factor_with_threads(&g, &dm, &r, 1).unwrap_err();
        for threads in [1usize, 4] {
            let blocked = stretch_factor_blocked(&g, &r, threads, 3).unwrap_err();
            assert_eq!(blocked, dense, "threads={threads}");
        }
    }

    #[test]
    fn degraded_view_buckets_outcomes_instead_of_failing() {
        // A cycle routed clockwise with one clockwise arc dead: messages
        // whose route crosses the cut drop as LinkDown, everything else
        // still arrives, and the engine reports both instead of erroring.
        let n = 16usize;
        let g = generators::cycle(n);
        let g2 = g.clone();
        let r = routemodel::function::dest_address_routing("cw", move |node, h: &Header| {
            if node == h.dest {
                Action::Deliver
            } else {
                Action::Forward(g2.port_to(node, (node + 1) % n).unwrap())
            }
        });
        let failures = FailureSet::from_edges(&g, &[(3, 4)]);
        let view = GraphView::masked(&g, &failures);
        let plan = Workload::AllPairs.compile(n);
        let rep = run_workload(view, &r, &plan, &EngineConfig::default()).unwrap();
        // The view stays connected (it is a path), so no pair is skipped.
        assert_eq!(rep.skipped_unreachable, 0);
        // s -> t drops iff the clockwise walk s..t uses the arc 3 -> 4;
        // summing over sources gives 15 + 14 + ... + 0 = 120 ordered pairs.
        assert_eq!(rep.outcomes.link_down, 120);
        assert_eq!(rep.outcomes.delivered, (n * (n - 1)) as u64 - 120);
        assert_eq!(rep.outcomes.hop_limit, 0);
        assert_eq!(rep.outcomes.wrong_delivery, 0);
        assert_eq!(rep.routed_messages, rep.outcomes.delivered);
        assert_eq!(rep.lengths.total(), rep.outcomes.delivered);
        assert!(rep.outcomes.delivery_rate() < 1.0);
        // Congestion only counts hops of delivered messages.
        assert_eq!(rep.congestion.unwrap().total_load, rep.lengths.total_hops());
    }

    #[test]
    fn outcome_counts_are_thread_invariant() {
        let g = generators::random_connected(50, 0.09, 11);
        let failures = FailureSet::sample(&g, 0.08, 7);
        let view = GraphView::masked(&g, &failures);
        let r = table_routing(&g); // stale: built for the full graph
        let plan = Workload::AllPairs.compile(50);
        let base = run_workload(
            view,
            &r,
            &plan,
            &EngineConfig {
                threads: 1,
                block_rows: 4,
                track_congestion: true,
            },
        )
        .unwrap();
        assert!(base.outcomes.link_down > 0, "stale routes should hit cuts");
        for (threads, block_rows) in [(2usize, 4usize), (3, 1), (5, 17)] {
            let rep = run_workload(
                view,
                &r,
                &plan,
                &EngineConfig {
                    threads,
                    block_rows,
                    track_congestion: true,
                },
            )
            .unwrap();
            assert_eq!(rep.outcomes, base.outcomes);
            assert_eq!(rep.lengths, base.lengths);
            assert_eq!(rep.congestion, base.congestion);
            assert_reports_bit_identical(&rep.stretch, &base.stretch);
        }
    }

    #[test]
    fn healthy_runs_report_full_delivery() {
        let g = generators::random_connected(40, 0.1, 3);
        let r = table_routing(&g);
        let plan = Workload::AllPairs.compile(40);
        let rep = run_workload(&g, &r, &plan, &EngineConfig::default()).unwrap();
        assert_eq!(rep.outcomes.delivered, rep.routed_messages);
        assert_eq!(rep.outcomes.attempted(), rep.routed_messages);
        assert_eq!(rep.outcomes.delivery_rate(), 1.0);
    }

    #[test]
    fn broadcast_congestion_concentrates_at_the_root() {
        let g = generators::star(16);
        let r = table_routing(&g);
        let plan = Workload::Broadcast { roots: vec![0] }.compile(17);
        let rep = run_workload(&g, &r, &plan, &EngineConfig::default()).unwrap();
        let cong = rep.congestion.unwrap();
        // The root sends one message down each of its 16 arcs.
        assert_eq!(rep.routed_messages, 16);
        assert_eq!(cong.max_arc_load, 1);
        assert_eq!(cong.loaded_arcs, 16);
        assert_eq!(rep.stretch.max_stretch, 1.0);
    }
}
