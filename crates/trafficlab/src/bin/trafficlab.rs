//! The `trafficlab` scenario runner.
//!
//! ```text
//! trafficlab list                       # show the scenario book
//! trafficlab run <name> [options]       # run one built-in scenario
//! trafficlab --file <path> [options]    # run a scenario TOML file
//! trafficlab smoke [options]            # alias for `run smoke`
//! trafficlab specs                      # print the spec vocabularies
//!                                       # (schemes, graphs, workloads)
//!
//! options:
//!   --threads <t>    worker count (default: all cores)
//!   --json <path>    also write the report as JSON ('-' = stdout; the
//!                    table then moves to stderr so stdout stays parseable)
//!   --schemes <s>    comma-separated scheme specs overriding every case's
//!                    scheme list, e.g. landmark?k=64&clusters=strict,tree
//!   --report <view>  extra report view (repeatable): 'congestion' appends
//!                    the congestion-vs-stretch trade-off table;
//!                    'resilience' appends the per-round churn table
//!                    (degraded delivery → repair cost → recovered delivery)
//! ```
//!
//! Scheme, graph and workload specs all follow the shared `speclang` codec;
//! a spec that fails to parse aborts with the typed error *and* the valid
//! vocabulary (keys + recognized parameters), rendered from the same
//! `param_docs` tables the parsers validate against so the help can never
//! drift from what is accepted.  Scenario names are matched
//! case-insensitively, and a typo'd name gets near-miss suggestions instead
//! of a bare list.
//!
//! Exit status is non-zero when any scheme violates its guaranteed stretch,
//! when any (case, scheme) cell fails with a routing error, or when nothing
//! ran at all — so CI can gate on the smoke scenario (built-in or via
//! `--file examples/scenarios/smoke.toml`).

// Binaries are the console front door; printing is their contract.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use routeschemes::spec::{vocabulary, SchemeSpec};
use std::process::ExitCode;
use trafficlab::{
    find_scenario, named_scenarios, run_scenario, suggest_scenarios, ChurnSpec, GraphSpec,
    Scenario, ScenarioSpec, StretchMode, WorkloadSpec,
};

fn usage() {
    eprintln!(
        "usage: trafficlab <list | run <scenario> | smoke | specs> \
         [--file path.toml] [--threads t] [--json path] [--schemes spec,spec] \
         [--report congestion|resilience]"
    );
    eprintln!("scenarios:");
    for s in named_scenarios() {
        eprintln!("  {:<18} {}", s.name, s.description);
    }
}

/// Which extra report views to print after the main table.
#[derive(Default, Clone, Copy)]
struct ReportViews {
    congestion: bool,
    resilience: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut json_path: Option<String> = None;
    let mut schemes_arg: Option<String> = None;
    let mut file_path: Option<String> = None;
    let mut views = ReportViews::default();
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--threads needs an integer argument");
                    return ExitCode::FAILURE;
                };
                threads = v;
            }
            "--json" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--json needs a path argument ('-' for stdout)");
                    return ExitCode::FAILURE;
                };
                json_path = Some(v.clone());
            }
            "--file" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--file needs a path to a scenario TOML file");
                    return ExitCode::FAILURE;
                };
                file_path = Some(v.clone());
            }
            "--report" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("congestion") => views.congestion = true,
                    Some("resilience") => views.resilience = true,
                    other => {
                        eprintln!(
                            "--report needs a view name (valid: congestion, resilience), got {:?}",
                            other.unwrap_or("")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--schemes" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--schemes needs a comma-separated list of scheme specs");
                    eprintln!("{}", vocabulary());
                    return ExitCode::FAILURE;
                };
                schemes_arg = Some(v.clone());
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown option '{flag}'");
                usage();
                return ExitCode::FAILURE;
            }
            other => positional.push(other),
        }
        i += 1;
    }

    // Parse the scheme override up front so a typo fails fast, with the
    // typed error and the whole vocabulary.
    let schemes_override: Option<Vec<SchemeSpec>> = match schemes_arg {
        None => None,
        Some(list) => {
            let mut specs = Vec::new();
            for raw in list.split(',').filter(|s| !s.is_empty()) {
                match SchemeSpec::parse(raw) {
                    Ok(spec) => specs.push(spec),
                    Err(e) => {
                        eprintln!("--schemes: {e}");
                        eprintln!("{}", vocabulary());
                        return ExitCode::FAILURE;
                    }
                }
            }
            if specs.is_empty() {
                eprintln!("--schemes: the list is empty");
                eprintln!("{}", vocabulary());
                return ExitCode::FAILURE;
            }
            Some(specs)
        }
    };

    if let Some(path) = &file_path {
        if !positional.is_empty() {
            eprintln!(
                "--file runs the given scenario file; drop '{}'",
                positional.join(" ")
            );
            return ExitCode::FAILURE;
        }
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scenario = match ScenarioSpec::parse_toml(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                eprintln!("spec vocabularies: see `trafficlab specs`");
                return ExitCode::FAILURE;
            }
        };
        return run_one(scenario, threads, json_path, schemes_override, views);
    }

    match positional.as_slice() {
        ["list"] => {
            for s in named_scenarios() {
                println!(
                    "{:<18} {} ({} case(s))",
                    s.name,
                    s.description,
                    s.cases.len()
                );
            }
            ExitCode::SUCCESS
        }
        ["specs"] => {
            println!("{}", vocabulary());
            println!("{}", GraphSpec::vocabulary());
            println!("{}", WorkloadSpec::vocabulary());
            println!("{}", ChurnSpec::vocabulary());
            println!("{}", StretchMode::vocabulary());
            println!("{}", trafficlab::files::case_key_vocabulary());
            ExitCode::SUCCESS
        }
        ["run", name] => run_named(name, threads, json_path, schemes_override, views),
        ["smoke"] => run_named("smoke", threads, json_path, schemes_override, views),
        other => {
            if !other.is_empty() {
                eprintln!("unrecognized arguments: {}", other.join(" "));
            }
            usage();
            ExitCode::FAILURE
        }
    }
}

fn run_named(
    name: &str,
    threads: usize,
    json_path: Option<String>,
    schemes_override: Option<Vec<SchemeSpec>>,
    views: ReportViews,
) -> ExitCode {
    let Some(scenario) = find_scenario(name) else {
        let suggestions = suggest_scenarios(name);
        if suggestions.is_empty() {
            eprintln!("unknown scenario '{name}' (try `trafficlab list`)");
        } else {
            eprintln!(
                "unknown scenario '{name}' — did you mean {}? (try `trafficlab list`)",
                suggestions
                    .iter()
                    .map(|s| format!("'{s}'"))
                    .collect::<Vec<_>>()
                    .join(" or ")
            );
        }
        return ExitCode::FAILURE;
    };
    run_one(scenario, threads, json_path, schemes_override, views)
}

fn run_one(
    mut scenario: Scenario,
    threads: usize,
    json_path: Option<String>,
    schemes_override: Option<Vec<SchemeSpec>>,
    views: ReportViews,
) -> ExitCode {
    if let Some(specs) = schemes_override {
        let rendered: Vec<String> = specs.iter().map(|s| s.spec_string()).collect();
        eprintln!("scheme override: {}", rendered.join(", "));
        for case in &mut scenario.cases {
            case.schemes = specs.clone();
        }
    }
    eprintln!("scenario {}: {}", scenario.name, scenario.description);
    let report = run_scenario(&scenario, threads);
    let json_to_stdout = json_path.as_deref() == Some("-");
    let mut table = report.to_table().to_plain();
    if views.congestion {
        table.push_str("\ncongestion vs stretch:\n");
        table.push_str(&report.to_congestion_table().to_plain());
    }
    if views.resilience {
        table.push_str("\nresilience under churn:\n");
        table.push_str(&report.to_resilience_table().to_plain());
        for r in &report.resilience {
            if let Some(h) = &r.halted {
                table.push_str(&format!("\n{} / {}: {h}", r.graph_label, r.scheme_spec));
            }
        }
    }
    if json_to_stdout {
        // Keep stdout pure JSON for piping; the table is status output.
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    for s in &report.skipped {
        eprintln!("note: {s}");
    }
    for e in &report.errors {
        eprintln!("ERROR: {e}");
    }
    if let Some(path) = json_path {
        let json = report.to_json();
        if json_to_stdout {
            println!("{json}");
        } else if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("report written to {path}");
        }
    }
    // Routing-model failures and broken stretch promises are regressions the
    // exit status must surface (CI gates on this).
    if !report.errors.is_empty() {
        eprintln!(
            "FAILURE: {} (case, scheme) cell(s) failed (routing errors or invalid workloads)",
            report.errors.len()
        );
        return ExitCode::FAILURE;
    }
    let violated = report
        .results
        .iter()
        .any(|r| r.within_guarantee == Some(false));
    if violated {
        eprintln!("FAILURE: some scheme exceeded its guaranteed stretch");
        return ExitCode::FAILURE;
    }
    if report.results.is_empty() {
        eprintln!("FAILURE: no (case, scheme) cell produced a result");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
