//! # routeserve
//!
//! The serving path: answer routing *queries* at sustained throughput
//! instead of sweeping experiments.
//!
//! `trafficlab` asks "what does this scheme cost over a whole traffic
//! pattern" and pays for BFS ground truth, stretch folds and congestion
//! counters.  A routing *server* answers a different question: given a built
//! scheme, how many `src → dst` queries per second can it resolve, and at
//! what latency?  This crate is that front door:
//!
//! * [`serve`] drives a compiled [`WorkloadPlan`] (an explicit query stream
//!   or a synthetic `WorkloadSpec` load) through a scheme's routing function
//!   and reports [`ServeStats`]: sustained msgs/s, delivery-outcome buckets
//!   and batch-latency percentiles.  No BFS, no stretch — the serving path
//!   measures the *scheme*, not the graph.
//! * [`ServeMode`] selects the kernel: [`ServeMode::PerMessage`] walks each
//!   query to completion via `route_with_limit_into` (the baseline the paper
//!   model defines), [`ServeMode::Batched`] advances whole batches in
//!   lock-step via [`routemodel::route_batch_into`] — identical outcomes
//!   (see `tests/batch_identity.rs` at the workspace root for the
//!   bit-identity matrix), amortized header encoding and sorted table
//!   accesses.
//! * [`parse_queries`] reads the `src dst` line format accepted on
//!   stdin/file by the `routeserve` binary.
//!
//! Work is sharded across `std::thread::scope` workers in chunks of at most
//! `batch` same-source queries; each worker owns one scratch
//! ([`routemodel::BatchScratch`] or a `RouteTrace`) so a warmed-up worker
//! routes with zero allocations per message in batched mode.  Outcome
//! counters merge by integer addition, so the counts are independent of
//! thread count and chunk scheduling; wall-clock numbers (`secs`,
//! percentiles) are measurements and vary run to run.

#![forbid(unsafe_code)]

use graphkit::GraphView;
use routemodel::{
    route_batch_into, route_with_limit_into, BatchScratch, RouteTrace, RoutingError,
    RoutingFunction,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use trafficlab::{OutcomeCounts, SourceDests, WorkloadPlan};

/// Which routing kernel answers the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One query at a time through `route_with_limit_into` — the reference
    /// per-message loop.
    PerMessage,
    /// Lock-step batches through [`route_batch_into`].
    Batched,
}

impl ServeMode {
    /// Stable name used in tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ServeMode::PerMessage => "per-message",
            ServeMode::Batched => "batched",
        }
    }
}

/// Knobs of one serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Kernel selection.
    pub mode: ServeMode,
    /// Maximum queries per chunk (and per batch-kernel call); `0` uses 4096.
    /// Both modes chunk identically so their latency samples are comparable.
    pub batch: usize,
    /// Worker count; `0` uses `std::thread::available_parallelism`.
    pub threads: usize,
    /// Hop budget per message; `0` uses `routemodel::default_hop_limit(n)`.
    pub hop_limit: usize,
}

impl ServeConfig {
    /// Batched serving with all defaults.
    pub fn batched() -> Self {
        ServeConfig {
            mode: ServeMode::Batched,
            batch: 0,
            threads: 0,
            hop_limit: 0,
        }
    }

    /// Per-message serving with all defaults.
    pub fn per_message() -> Self {
        ServeConfig {
            mode: ServeMode::PerMessage,
            ..Self::batched()
        }
    }

    fn effective_batch(&self) -> usize {
        if self.batch == 0 {
            4096
        } else {
            self.batch
        }
    }

    fn effective_threads(&self, chunks: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|x| x.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, chunks.max(1))
    }

    fn effective_hop_limit(&self, n: usize) -> usize {
        if self.hop_limit == 0 {
            routemodel::default_hop_limit(n)
        } else {
            self.hop_limit
        }
    }
}

/// What one serving run measured.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// The kernel that ran.
    pub mode: ServeMode,
    /// Effective chunk/batch size.
    pub batch: usize,
    /// Effective worker count.
    pub threads: usize,
    /// Effective hop budget.
    pub hop_limit: usize,
    /// Per-message fates, merged across workers (thread-count invariant).
    pub outcomes: OutcomeCounts,
    /// Wall-clock seconds of the routing phase.
    pub secs: f64,
    /// Query latency percentiles in microseconds.  A query's latency is the
    /// wall time of the chunk it rode in (queries in a chunk complete
    /// together), weighted by chunk size.
    pub p50_us: f64,
    /// 90th percentile, same definition.
    pub p90_us: f64,
    /// 99th percentile, same definition.
    pub p99_us: f64,
}

impl ServeStats {
    /// Sustained throughput over attempted messages.
    pub fn messages_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.outcomes.attempted() as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Fraction of attempted messages delivered.
    pub fn delivery_rate(&self) -> f64 {
        self.outcomes.delivery_rate()
    }
}

/// A unit of sharded work: `count` destinations of `source`, starting at
/// offset `start` of the source's destination sequence.
#[derive(Clone, Copy)]
struct Chunk {
    source: u32,
    start: u32,
    count: u32,
}

/// What each worker folds into the shared accumulator: outcome counts,
/// `(chunk wall-time µs, messages)` latency samples, and the first routing
/// error (if any).
type WorkerMerge = (OutcomeCounts, Vec<(f64, u64)>, Option<RoutingError>);

/// Serves every query of `plan` through `r` over `g` and reports what was
/// measured.  Outcome counts are identical for both [`ServeMode`]s and any
/// thread count; the only error is a routing-model violation
/// (`RoutingError::PortOutOfRange`), reported from whichever chunk hit it.
pub fn serve(
    g: GraphView<'_>,
    r: &(dyn RoutingFunction + Send + Sync),
    plan: &WorkloadPlan,
    cfg: &ServeConfig,
) -> Result<ServeStats, RoutingError> {
    let n = g.num_nodes();
    assert_eq!(
        plan.num_nodes(),
        n,
        "plan compiled for {} nodes, graph has {n}",
        plan.num_nodes()
    );
    let batch = cfg.effective_batch();
    let hop_limit = cfg.effective_hop_limit(n);

    // Chunk the plan up front: same-source runs of at most `batch` queries.
    let mut chunks: Vec<Chunk> = Vec::new();
    for s in 0..n {
        let total = match plan.dests(s) {
            SourceDests::AllOthers => n - 1,
            SourceDests::List(list) => list.len(),
        };
        let mut start = 0usize;
        while start < total {
            let count = batch.min(total - start);
            chunks.push(Chunk {
                source: s as u32,
                start: start as u32,
                count: count as u32,
            });
            start += count;
        }
    }
    let threads = cfg.effective_threads(chunks.len());

    let cursor = AtomicUsize::new(0);
    let merged: Mutex<WorkerMerge> = Mutex::new((OutcomeCounts::default(), Vec::new(), None));

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut outcomes = OutcomeCounts::default();
                // (chunk wall-time µs, messages in chunk) latency samples.
                let mut samples: Vec<(f64, u64)> = Vec::new();
                let mut batch_scratch = BatchScratch::new();
                let mut trace = RouteTrace::new();
                let mut dest_buf: Vec<u32> = Vec::new();
                let mut failure: Option<RoutingError> = None;

                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(chunk) = chunks.get(i) else { break };
                    let s = chunk.source as usize;
                    let (start, count) = (chunk.start as usize, chunk.count as usize);
                    let dests: &[u32] = match plan.dests(s) {
                        SourceDests::List(list) => &list[start..start + count],
                        SourceDests::AllOthers => {
                            // Destinations of `s` are 0..n with `s` skipped.
                            dest_buf.clear();
                            dest_buf.extend((start..start + count).map(|i| {
                                if i < s {
                                    i as u32
                                } else {
                                    i as u32 + 1
                                }
                            }));
                            &dest_buf
                        }
                    };

                    let t = Instant::now();
                    let result = match cfg.mode {
                        ServeMode::Batched => route_batch_into(
                            g,
                            r,
                            s,
                            dests,
                            hop_limit,
                            &mut batch_scratch,
                            false,
                            |_, _, outcome| outcomes.record(outcome),
                            |_, _| {},
                        ),
                        ServeMode::PerMessage => {
                            let mut out = Ok(());
                            for &t in dests {
                                if t as usize == s {
                                    continue;
                                }
                                match route_with_limit_into(
                                    g, r, s, t as usize, hop_limit, &mut trace,
                                ) {
                                    Ok(outcome) => outcomes.record(outcome),
                                    Err(e) => {
                                        out = Err(e);
                                        break;
                                    }
                                }
                            }
                            out
                        }
                    };
                    let elapsed_us = t.elapsed().as_secs_f64() * 1e6;
                    samples.push((elapsed_us, count as u64));
                    if let Err(e) = result {
                        failure = Some(e);
                        break;
                    }
                }

                let mut m = merged.lock().unwrap();
                m.0.merge(&outcomes);
                m.1.append(&mut samples);
                if m.2.is_none() {
                    m.2 = failure;
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();

    let (outcomes, mut samples, failure) = merged.into_inner().unwrap();
    if let Some(e) = failure {
        return Err(e);
    }
    let (p50_us, p90_us, p99_us) = (
        weighted_percentile(&mut samples, 0.50),
        weighted_percentile(&mut samples, 0.90),
        weighted_percentile(&mut samples, 0.99),
    );
    Ok(ServeStats {
        mode: cfg.mode,
        batch,
        threads,
        hop_limit,
        outcomes,
        secs,
        p50_us,
        p90_us,
        p99_us,
    })
}

/// Weighted percentile over `(value, weight)` samples: the smallest value
/// whose cumulative weight reaches `q` of the total.  `0.0` on no samples.
fn weighted_percentile(samples: &mut [(f64, u64)], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: u64 = samples.iter().map(|&(_, w)| w).sum();
    if total == 0 {
        return samples[samples.len() - 1].0;
    }
    let target = (q * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(v, w) in samples.iter() {
        cum += w;
        if cum >= target {
            return v;
        }
    }
    samples[samples.len() - 1].0
}

/// Parses a query stream: one `src dst` pair per line, whitespace separated.
/// Blank lines and `#` comments are skipped; both endpoints must be in
/// `0..n`.  Self-pairs are kept here and dropped by
/// [`WorkloadPlan::from_pairs`], matching every generated workload.
pub fn parse_queries(text: &str, n: usize) -> Result<Vec<(usize, usize)>, String> {
    let mut pairs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!(
                "line {}: expected 'src dst', got '{line}'",
                lineno + 1
            ));
        };
        let parse = |tok: &str| -> Result<usize, String> {
            let v: usize = tok
                .parse()
                .map_err(|_| format!("line {}: '{tok}' is not a vertex id", lineno + 1))?;
            if v >= n {
                return Err(format!(
                    "line {}: vertex {v} out of range for n={n}",
                    lineno + 1
                ));
            }
            Ok(v)
        };
        pairs.push((parse(a)?, parse(b)?));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphkit::{generators, FailureSet};
    use routeschemes::spec::SchemeSpec;
    use routeschemes::{GraphHints, SchemeKind};
    use trafficlab::WorkloadSpec;

    fn plan_uniform(n: usize, messages: u64, seed: u64) -> WorkloadPlan {
        WorkloadSpec::Uniform { messages, seed }.compile(n)
    }

    /// Both kernels must bucket every query identically, for any chunk size
    /// and thread count, on full and failure-masked views.
    #[test]
    fn kernels_agree_on_outcome_counts() {
        let g = generators::random_connected(192, 6.0 / 192.0, 0xBEEF);
        let plan = plan_uniform(192, 4000, 7);
        let failures = FailureSet::sample(&g, 0.1, 0xF411);
        for spec in [
            SchemeSpec::default_for(SchemeKind::SpanningTree),
            SchemeSpec::default_for(SchemeKind::Landmark),
            SchemeSpec::default_for(SchemeKind::Table),
        ] {
            let inst = spec.build(&g, &GraphHints::none()).unwrap();
            for view in [GraphView::full(&g), GraphView::masked(&g, &failures)] {
                let mut counts = Vec::new();
                for (mode, batch, threads) in [
                    (ServeMode::PerMessage, 0, 1),
                    (ServeMode::Batched, 1, 1),
                    (ServeMode::Batched, 64, 1),
                    (ServeMode::Batched, 0, 4),
                    (ServeMode::PerMessage, 256, 4),
                ] {
                    let cfg = ServeConfig {
                        mode,
                        batch,
                        threads,
                        hop_limit: 0,
                    };
                    let stats = serve(view, &*inst.routing, &plan, &cfg).unwrap();
                    assert_eq!(stats.outcomes.attempted(), plan.messages());
                    counts.push(stats.outcomes);
                }
                for c in &counts[1..] {
                    assert_eq!(
                        c,
                        &counts[0],
                        "{} outcome counts diverged across kernels",
                        spec.spec_string()
                    );
                }
            }
        }
    }

    /// The all-pairs plan exercises the `AllOthers` destination
    /// materialization; every query must be delivered on a live view.
    #[test]
    fn all_pairs_plan_serves_every_pair() {
        let g = generators::hypercube(6);
        let inst = SchemeSpec::default_for(SchemeKind::Ecube)
            .build(&g, &GraphHints::hypercube(6))
            .unwrap();
        let plan = WorkloadSpec::AllPairs.compile(64);
        let cfg = ServeConfig {
            batch: 17, // ragged chunks straddle the source-skip boundary
            ..ServeConfig::batched()
        };
        let stats = serve(GraphView::full(&g), &*inst.routing, &plan, &cfg).unwrap();
        assert_eq!(stats.outcomes.delivered, 64 * 63);
        assert_eq!(stats.delivery_rate(), 1.0);
        assert!(stats.messages_per_sec() > 0.0);
        assert!(stats.p50_us <= stats.p90_us && stats.p90_us <= stats.p99_us);
    }

    #[test]
    fn empty_plan_is_not_an_outage() {
        let g = generators::cycle(8);
        let inst = SchemeSpec::default_for(SchemeKind::SpanningTree)
            .build(&g, &GraphHints::none())
            .unwrap();
        let plan = WorkloadPlan::from_pairs(8, vec![(3, 3)]); // self-pair only
        let stats = serve(
            GraphView::full(&g),
            &*inst.routing,
            &plan,
            &ServeConfig::batched(),
        )
        .unwrap();
        assert_eq!(stats.outcomes.attempted(), 0);
        assert_eq!(stats.delivery_rate(), 1.0);
        assert_eq!(stats.messages_per_sec(), 0.0);
        assert_eq!(stats.p99_us, 0.0);
    }

    #[test]
    fn query_streams_parse_and_reject() {
        let text = "0 5\n# comment\n\n3 3   # self pair kept here\n 7 1 \n";
        assert_eq!(
            parse_queries(text, 8).unwrap(),
            vec![(0, 5), (3, 3), (7, 1)]
        );
        assert!(parse_queries("0 8", 8)
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_queries("0", 8).unwrap_err().contains("expected"));
        assert!(parse_queries("0 1 2", 8).unwrap_err().contains("expected"));
        assert!(parse_queries("a 1", 8).unwrap_err().contains("vertex id"));
        // Self-pairs are dropped at plan compile, like generated workloads.
        let plan = WorkloadPlan::from_pairs(8, parse_queries(text, 8).unwrap());
        assert_eq!(plan.messages(), 2);
    }

    #[test]
    fn percentiles_weight_by_message_count() {
        let mut samples = vec![(100.0, 99), (1000.0, 1)];
        assert_eq!(weighted_percentile(&mut samples, 0.50), 100.0);
        assert_eq!(weighted_percentile(&mut samples, 0.99), 100.0);
        assert_eq!(weighted_percentile(&mut samples, 1.0), 1000.0);
        assert_eq!(weighted_percentile(&mut [], 0.5), 0.0);
    }
}
