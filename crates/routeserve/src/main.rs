//! The `routeserve` front door.
//!
//! ```text
//! routeserve --graph <spec> --scheme <spec>
//!            [--workload <spec> | --queries <path|->]
//!            [--batch B] [--threads T] [--hop-limit H]
//!            [--compare] [--per-message] [--json path|-]
//! ```
//!
//! Builds the scheme from its `SchemeSpec` string on the graph of the
//! `GraphSpec` string, then serves the query stream: either a synthetic
//! `WorkloadSpec` load (`--workload uniform?messages=1e6`) or explicit
//! `src dst` lines from a file or stdin (`--queries -`).  Reports sustained
//! msgs/s, delivery buckets and chunk-latency percentiles as a table, and as
//! JSON with `--json` (`'-'` moves the table to stderr so stdout stays
//! parseable).
//!
//! `--compare` runs the per-message baseline and the lock-step batch kernel
//! over the same stream and prints both rows plus the speedup ratio; CI
//! gates on that JSON (delivery 1.0, batched >= per-message).  Exit status
//! is non-zero on spec/build/IO errors, on a routing-model violation, and —
//! under `--compare` — when the batched kernel fails to at least match the
//! baseline.

// Binaries are the console front door; printing is their contract.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use graphkit::GraphView;
use routemodel::DeliveryOutcome;
use routeschemes::spec::{vocabulary, SchemeSpec};
use routeserve::{parse_queries, serve, ServeConfig, ServeMode, ServeStats};
use std::io::Read;
use std::process::ExitCode;
use trafficlab::{GraphSpec, WorkloadPlan, WorkloadSpec};

fn usage() {
    eprintln!(
        "usage: routeserve --graph <spec> --scheme <spec> \
         [--workload <spec> | --queries <path|->] \
         [--batch B] [--threads T] [--hop-limit H] \
         [--compare] [--per-message] [--json path|-]"
    );
    eprintln!("spec vocabularies:");
    eprintln!("{}", vocabulary());
    eprintln!("{}", GraphSpec::vocabulary());
    eprintln!("{}", WorkloadSpec::vocabulary());
}

struct Args {
    graph: String,
    scheme: String,
    workload: Option<String>,
    queries: Option<String>,
    batch: usize,
    threads: usize,
    hop_limit: usize,
    compare: bool,
    per_message: bool,
    json: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        scheme: String::new(),
        workload: None,
        queries: None,
        batch: 0,
        threads: 0,
        hop_limit: 0,
        compare: false,
        per_message: false,
        json: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs an argument"))
        };
        match flag {
            "--graph" => args.graph = value()?,
            "--scheme" => args.scheme = value()?,
            "--workload" => args.workload = Some(value()?),
            "--queries" => args.queries = Some(value()?),
            "--json" => args.json = Some(value()?),
            "--batch" => {
                args.batch = value()?
                    .parse()
                    .map_err(|_| "--batch needs an integer".to_string())?;
            }
            "--threads" => {
                args.threads = value()?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--hop-limit" => {
                args.hop_limit = value()?
                    .parse()
                    .map_err(|_| "--hop-limit needs an integer".to_string())?;
            }
            "--compare" => args.compare = true,
            "--per-message" => args.per_message = true,
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if args.graph.is_empty() || args.scheme.is_empty() {
        return Err("--graph and --scheme are required".to_string());
    }
    if args.workload.is_some() && args.queries.is_some() {
        return Err("--workload and --queries are mutually exclusive".to_string());
    }
    if args.compare && args.per_message {
        return Err("--compare already runs the per-message baseline".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let graph_spec = match GraphSpec::parse(&args.graph) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--graph: {e}");
            eprintln!("{}", GraphSpec::vocabulary());
            return ExitCode::FAILURE;
        }
    };
    let scheme_spec = match SchemeSpec::parse(&args.scheme) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--scheme: {e}");
            eprintln!("{}", vocabulary());
            return ExitCode::FAILURE;
        }
    };

    let built = graph_spec.build();
    let n = built.graph.num_nodes();

    // The query stream: explicit pairs, or a synthetic workload
    // (default: one million uniform queries).
    let (plan, stream_label) = if let Some(src) = &args.queries {
        let text = if src == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(src) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {src}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        match parse_queries(&text, n) {
            Ok(pairs) => (WorkloadPlan::from_pairs(n, pairs), format!("queries:{src}")),
            Err(e) => {
                eprintln!("--queries: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let raw = args
            .workload
            .clone()
            .unwrap_or_else(|| "uniform?messages=1000000".to_string());
        let spec = match WorkloadSpec::parse(&raw) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("--workload: {e}");
                eprintln!("{}", WorkloadSpec::vocabulary());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = spec.validate(n) {
            eprintln!("--workload: {e}");
            return ExitCode::FAILURE;
        }
        (spec.compile(n), spec.spec_string())
    };

    let t0 = std::time::Instant::now();
    let instance = match scheme_spec.build(&built.graph, &built.hints) {
        Ok(i) => i,
        Err(e) => {
            eprintln!(
                "cannot build {} on {}: {e}",
                scheme_spec.spec_string(),
                args.graph
            );
            return ExitCode::FAILURE;
        }
    };
    let build_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "serving {} on {} (n={n}, {} queries, built in {:.2}s)",
        scheme_spec.spec_string(),
        args.graph,
        plan.messages(),
        build_secs
    );

    let modes: &[ServeMode] = if args.compare {
        &[ServeMode::PerMessage, ServeMode::Batched]
    } else if args.per_message {
        &[ServeMode::PerMessage]
    } else {
        &[ServeMode::Batched]
    };

    let view = GraphView::full(&built.graph);
    let mut runs: Vec<ServeStats> = Vec::new();
    for &mode in modes {
        let cfg = ServeConfig {
            mode,
            batch: args.batch,
            threads: args.threads,
            hop_limit: args.hop_limit,
        };
        match serve(view, &*instance.routing, &plan, &cfg) {
            Ok(stats) => runs.push(stats),
            Err(e) => {
                eprintln!("routing-model violation in {} mode: {e}", mode.name());
                return ExitCode::FAILURE;
            }
        }
    }

    let table = render_table(&runs);
    let json_to_stdout = args.json.as_deref() == Some("-");
    if json_to_stdout {
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    if args.compare {
        let speedup = speedup_ratio(&runs);
        let line = format!("batched/per-message speedup: {speedup:.2}x");
        if json_to_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    if let Some(path) = &args.json {
        let json = render_json(&args, &stream_label, n, build_secs, &runs);
        if json_to_stdout {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("report written to {path}");
        }
    }

    if args.compare && speedup_ratio(&runs) < 1.0 {
        eprintln!("FAILURE: batched kernel slower than the per-message baseline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn speedup_ratio(runs: &[ServeStats]) -> f64 {
    let per = runs
        .iter()
        .find(|r| r.mode == ServeMode::PerMessage)
        .map(|r| r.messages_per_sec())
        .unwrap_or(0.0);
    let batched = runs
        .iter()
        .find(|r| r.mode == ServeMode::Batched)
        .map(|r| r.messages_per_sec())
        .unwrap_or(0.0);
    if per > 0.0 {
        batched / per
    } else {
        0.0
    }
}

fn render_table(runs: &[ServeStats]) -> String {
    let mut out = format!(
        "{:<12} {:>7} {:>3} {:>10} {:>12} {:>9} {:>9} {:>9} {:>9}\n",
        "mode", "batch", "thr", "messages", "msgs/s", "delivery", "p50_us", "p90_us", "p99_us"
    );
    for r in runs {
        out.push_str(&format!(
            "{:<12} {:>7} {:>3} {:>10} {:>12.0} {:>9.4} {:>9.1} {:>9.1} {:>9.1}\n",
            r.mode.name(),
            r.batch,
            r.threads,
            r.outcomes.attempted(),
            r.messages_per_sec(),
            r.delivery_rate(),
            r.p50_us,
            r.p90_us,
            r.p99_us,
        ));
    }
    out.pop();
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    args: &Args,
    stream_label: &str,
    n: usize,
    build_secs: f64,
    runs: &[ServeStats],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"graph\": \"{}\",\n", json_escape(&args.graph)));
    out.push_str(&format!(
        "  \"scheme\": \"{}\",\n",
        json_escape(&args.scheme)
    ));
    out.push_str(&format!(
        "  \"stream\": \"{}\",\n",
        json_escape(stream_label)
    ));
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"build_secs\": {build_secs:.6},\n"));
    if runs.len() == 2 {
        out.push_str(&format!("  \"speedup\": {:.6},\n", speedup_ratio(runs)));
    }
    out.push_str("  \"modes\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"mode\": \"{}\",\n", r.mode.name()));
        out.push_str(&format!("      \"batch\": {},\n", r.batch));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"hop_limit\": {},\n", r.hop_limit));
        out.push_str(&format!(
            "      \"messages\": {},\n",
            r.outcomes.attempted()
        ));
        // Outcome keys come from the model's code vocabulary, not string
        // literals, so they cannot drift from `DeliveryOutcome::code()`.
        out.push_str("      \"outcomes\": {");
        for (j, code) in DeliveryOutcome::ALL_CODES.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let count = r
                .outcomes
                .by_code(code)
                .expect("every model code has a bucket");
            out.push_str(&format!("\"{code}\": {count}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "      \"delivery_rate\": {:.6},\n",
            r.delivery_rate()
        ));
        out.push_str(&format!("      \"secs\": {:.6},\n", r.secs));
        out.push_str(&format!(
            "      \"msgs_per_sec\": {:.1},\n",
            r.messages_per_sec()
        ));
        out.push_str(&format!("      \"p50_us\": {:.2},\n", r.p50_us));
        out.push_str(&format!("      \"p90_us\": {:.2},\n", r.p90_us));
        out.push_str(&format!("      \"p99_us\": {:.2}\n", r.p99_us));
        out.push_str(if i + 1 == runs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
