//! Integration test: every routing scheme, built through the facade crate,
//! delivers every message, honours its stretch guarantee and reports
//! consistent memory numbers on a spread of graph families.

use universal_routing::prelude::*;

fn check_scheme(g: &Graph, scheme: &dyn CompactScheme) {
    let Ok(inst) = scheme.try_build(g, &GraphHints::none()) else {
        return;
    };
    let dm = DistanceMatrix::all_pairs(g);
    // every pair is delivered
    for s in 0..g.num_nodes() {
        for t in 0..g.num_nodes() {
            let trace = route(g, inst.routing.as_ref(), s, t)
                .unwrap_or_else(|e| panic!("{} failed on ({s},{t}): {e}", scheme.name()));
            assert_eq!(*trace.path.last().unwrap(), t);
        }
    }
    // stretch guarantee holds
    let rep = stretch_factor(g, &dm, inst.routing.as_ref()).unwrap();
    if let Some(bound) = inst.guaranteed_stretch {
        assert!(
            rep.max_stretch <= bound + 1e-9,
            "{} exceeded stretch {bound}: {}",
            scheme.name(),
            rep.max_stretch
        );
    }
    // memory report covers every router and is internally consistent
    assert_eq!(inst.memory.per_node.len(), g.num_nodes());
    assert!(inst.memory.local() <= inst.memory.global());
}

#[test]
fn universal_schemes_work_on_every_family() {
    let families: Vec<Graph> = vec![
        generators::petersen(),
        generators::cycle(17),
        generators::grid(5, 7),
        generators::hypercube(5),
        generators::random_tree(40, 8),
        generators::maximal_outerplanar(30, 2),
        generators::chordal_ktree(30, 3, 2),
        generators::unit_circular_arc(30, 2),
        generators::random_connected(48, 0.1, 2),
        generators::complete(20),
    ];
    let schemes: Vec<Box<dyn CompactScheme>> = vec![
        Box::new(TableScheme::default()),
        Box::new(KIntervalScheme::default()),
        Box::new(LandmarkScheme::new(77)),
        Box::new(routeschemes::SpanningTreeScheme::default()),
    ];
    for g in &families {
        for s in &schemes {
            check_scheme(g, s.as_ref());
        }
    }
}

#[test]
fn class_specific_schemes_work_on_their_class() {
    check_scheme(&generators::hypercube(6), &EcubeScheme);
    check_scheme(&generators::random_tree(60, 5), &TreeIntervalScheme);
    check_scheme(&generators::balanced_tree(3, 3), &TreeIntervalScheme);
    let grid = generators::grid(6, 9);
    check_scheme(&grid, &routeschemes::DimensionOrderScheme::new(6, 9));
    let good = routemodel::labeling::modular_complete_labeling(24);
    check_scheme(&good, &routeschemes::ModularCompleteScheme);
    check_scheme(
        &generators::complete(24),
        &routeschemes::AdversarialCompleteScheme,
    );
}

#[test]
fn memory_hierarchy_on_the_hypercube() {
    // On the hypercube, Table 1's headline separation is the O(log n) e-cube
    // scheme against everything that stores per-destination information: it
    // must be far below both routing tables and the landmark scheme.  (The
    // landmark-versus-tables comparison is asymptotic and is exercised at
    // larger sizes by the routeschemes tests and the table1_memory bench.)
    let g = generators::hypercube(7);
    let ecube = EcubeScheme.build(&g).memory.local();
    let tables = TableScheme::default().build(&g).memory.local();
    let landmark = LandmarkScheme::new(3).build(&g).memory.local();
    assert!(ecube * 5 < landmark);
    assert!(ecube * 10 < tables);
}

#[test]
fn facade_prelude_exposes_the_paper_pipeline() {
    // The doc-test of the facade in miniature, as a plain integration test.
    let (cg, params) = constraints::theorem1::build_worst_case_instance(64, 0.5, 1);
    assert_eq!(cg.graph.num_nodes(), 64);
    assert_eq!(params.n, 64);
    let r = TableRouting::shortest_paths(&cg.graph, TieBreak::LowestPort);
    assert!(constraints::verify::verify_routing_respects_constraints(&cg, &r).is_ok());
}
