//! Integration properties of the sharded workload pipeline, across crates:
//!
//! * block-streamed all-pairs stretch is **bit-identical** to the dense
//!   `DistanceMatrix` + `stretch_factor` path, across graph families, worker
//!   counts and block sizes (including blocks that fall back to wide rows);
//! * per-arc congestion totals equal the sum of route lengths (flow
//!   conservation);
//! * every scheme of the registry measures within its promised stretch
//!   bound under traffic;
//! * `DistanceBlock` rows agree cell-for-cell with `DistanceMatrix`.

use graphkit::{generators, DistanceBlock, DistanceMatrix, Graph, Xoshiro256};
use routemodel::{stretch_factor_with_threads, StretchReport, TableRouting, TieBreak};
use routeschemes::registry::{applicable_schemes, GraphHints};
use routeschemes::CompactScheme;
use trafficlab::{run_workload, stretch_factor_blocked, EngineConfig, Workload};

fn graph_families() -> Vec<(&'static str, Graph, GraphHints)> {
    vec![
        (
            "random",
            generators::random_connected(96, 0.06, 41),
            GraphHints::none(),
        ),
        ("cycle", generators::cycle(80), GraphHints::none()),
        ("grid", generators::grid(8, 9), GraphHints::grid(8, 9)),
        ("hypercube", generators::hypercube(6), GraphHints::none()),
        ("tree", generators::random_tree(70, 11), GraphHints::none()),
        // Long path: BFS layers exceed 255, forcing the wide-row fallback.
        ("long-path", generators::path(300), GraphHints::none()),
    ]
}

fn assert_bit_identical(a: &StretchReport, b: &StretchReport, ctx: &str) {
    assert_eq!(a.max_stretch.to_bits(), b.max_stretch.to_bits(), "{ctx}");
    assert_eq!(a.avg_stretch.to_bits(), b.avg_stretch.to_bits(), "{ctx}");
    assert_eq!(a.max_pair, b.max_pair, "{ctx}");
    assert_eq!(a.max_route_len, b.max_route_len, "{ctx}");
    assert_eq!(a.pairs, b.pairs, "{ctx}");
}

#[test]
fn blocked_stretch_bit_identical_to_dense_across_families() {
    for (name, g, _) in graph_families() {
        let dm = DistanceMatrix::all_pairs_sequential(&g);
        let table = TableRouting::from_distances(&g, &dm, TieBreak::LowestPort);
        let dense = stretch_factor_with_threads(&g, &dm, &table, 1).unwrap();
        for (threads, block_rows) in [(1usize, 1usize), (1, 64), (2, 7), (4, 16), (3, 1000)] {
            let blocked = stretch_factor_blocked(&g, &table, threads, block_rows).unwrap();
            assert_bit_identical(
                &blocked,
                &dense,
                &format!("{name} threads={threads} block_rows={block_rows}"),
            );
        }
    }
}

#[test]
fn blocked_stretch_bit_identical_for_spanning_tree_routing() {
    // Non-trivial stretch profile (the table scheme is all-ones): the
    // spanning-tree routing stresses max/argmax/average merging for real.
    for (name, g, _) in graph_families() {
        let dm = DistanceMatrix::all_pairs_sequential(&g);
        let inst = routeschemes::SpanningTreeScheme::default().build(&g);
        let r = inst.routing.as_ref();
        let dense = stretch_factor_with_threads(&g, &dm, r, 1).unwrap();
        for (threads, block_rows) in [(2usize, 13usize), (5, 32)] {
            let blocked = stretch_factor_blocked(&g, r, threads, block_rows).unwrap();
            assert_bit_identical(&blocked, &dense, name);
        }
    }
}

#[test]
fn congestion_is_flow_conserving_across_workloads_and_shard_shapes() {
    let g = generators::random_connected(120, 0.05, 23);
    let dm = DistanceMatrix::all_pairs_sequential(&g);
    let table = TableRouting::from_distances(&g, &dm, TieBreak::LowestNeighbor);
    let workloads = [
        Workload::AllPairs,
        Workload::Uniform {
            messages: 4_000,
            seed: 2,
        },
        Workload::Zipf {
            messages: 4_000,
            exponent: 1.2,
            seed: 3,
        },
        Workload::Permutations {
            rounds: 10,
            seed: 4,
        },
        Workload::Broadcast {
            roots: vec![0, 60, 119],
        },
        Workload::SampledSources {
            sources: 9,
            dests_per_source: 40,
            seed: 5,
        },
    ];
    for w in workloads {
        let plan = w.compile(g.num_nodes());
        let mut baseline: Option<trafficlab::WorkloadReport> = None;
        for (threads, block_rows) in [(1usize, 16usize), (3, 5), (6, 64)] {
            let rep = run_workload(
                &g,
                &table,
                &plan,
                &EngineConfig {
                    threads,
                    block_rows,
                    track_congestion: true,
                },
            )
            .unwrap();
            let cong = rep.congestion.as_ref().expect("congestion tracked");
            // Flow conservation: every hop lands on exactly one arc.
            assert_eq!(cong.total_load, rep.lengths.total_hops(), "{}", w.key());
            assert_eq!(rep.lengths.total(), rep.routed_messages, "{}", w.key());
            assert_eq!(rep.routed_messages, plan.messages(), "{}", w.key());
            // And the whole report is independent of the shard shape.
            if let Some(base) = &baseline {
                assert_bit_identical(&rep.stretch, &base.stretch, w.key());
                assert_eq!(rep.congestion, base.congestion, "{}", w.key());
                assert_eq!(rep.lengths, base.lengths, "{}", w.key());
            } else {
                baseline = Some(rep);
            }
        }
    }
}

#[test]
fn congestion_equals_brute_force_arc_counts() {
    // Recount every arc traversal by replaying each message individually.
    let g = generators::random_connected(40, 0.1, 31);
    let dm = DistanceMatrix::all_pairs_sequential(&g);
    let table = TableRouting::from_distances(&g, &dm, TieBreak::LowestPort);
    let w = Workload::Uniform {
        messages: 1_500,
        seed: 8,
    };
    let plan = w.compile(g.num_nodes());
    let rep = run_workload(&g, &table, &plan, &EngineConfig::default()).unwrap();
    let mut total_len = 0u64;
    for s in 0..g.num_nodes() {
        if let trafficlab::SourceDests::List(list) = plan.dests(s) {
            for &t in list {
                let trace = routemodel::route(&g, &table, s, t as usize).unwrap();
                total_len += trace.len() as u64;
            }
        }
    }
    assert_eq!(rep.congestion.unwrap().total_load, total_len);
}

#[test]
fn registry_schemes_measure_within_their_guarantees() {
    let specs: Vec<(Graph, GraphHints)> = vec![
        (
            generators::random_connected(64, 0.08, 77),
            GraphHints::none(),
        ),
        (generators::hypercube(5), GraphHints::none()),
        (generators::grid(6, 7), GraphHints::grid(6, 7)),
        (
            routemodel::labeling::modular_complete_labeling(24),
            GraphHints::none(),
        ),
    ];
    let mut guaranteed_cells = 0;
    for (g, hints) in &specs {
        let plan = Workload::Uniform {
            messages: 2_000,
            seed: 6,
        }
        .compile(g.num_nodes());
        for (kind, inst) in applicable_schemes(g, hints) {
            let rep = run_workload(g, inst.routing.as_ref(), &plan, &EngineConfig::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", kind.key()));
            if let Some(bound) = inst.guaranteed_stretch {
                guaranteed_cells += 1;
                assert!(
                    rep.stretch.max_stretch <= bound + 1e-9,
                    "{} measured {} above its bound {bound}",
                    kind.key(),
                    rep.stretch.max_stretch
                );
            }
        }
    }
    assert!(guaranteed_cells >= 8, "too few guaranteed cells exercised");
}

#[test]
fn distance_blocks_agree_with_dense_matrix_on_random_shards() {
    let mut rng = Xoshiro256::new(0xB10C);
    for (name, g, _) in graph_families() {
        let n = g.num_nodes();
        let dm = DistanceMatrix::all_pairs_sequential(&g);
        for _ in 0..12 {
            let start = rng.gen_range(n);
            let rows = 1 + rng.gen_range((n - start).min(40));
            let block = DistanceBlock::compute(&g, start, rows);
            for u in start..start + rows {
                for v in 0..n {
                    assert_eq!(block.dist(u, v), dm.dist(u, v), "{name} d({u},{v})");
                }
            }
        }
    }
}

#[test]
fn engine_never_needs_the_dense_matrix_memory() {
    // At n = 8192 the dense matrix would be 4·n² = 256 MiB; the block
    // pipeline's tracked peak must stay orders of magnitude below it.
    let g = generators::random_regular_like(8192, 6, 99);
    let inst = routeschemes::SpanningTreeScheme::default().build(&g);
    let plan = Workload::SampledSources {
        sources: 16,
        dests_per_source: 64,
        seed: 12,
    }
    .compile(g.num_nodes());
    let rep = run_workload(
        &g,
        inst.routing.as_ref(),
        &plan,
        &EngineConfig {
            threads: 2,
            block_rows: 1,
            track_congestion: false,
        },
    )
    .unwrap();
    assert_eq!(rep.routed_messages, 16 * 64);
    let dense_bytes = 4u64 * 8192 * 8192;
    assert!(
        rep.peak_tracked_bytes < dense_bytes / 100,
        "peak {} vs dense {}",
        rep.peak_tracked_bytes,
        dense_bytes
    );
}
