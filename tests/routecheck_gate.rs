//! Every scheme a built-in scenario would measure is statically sound.
//!
//! This is the debug-profile twin of the CI release gate: for each
//! `[[case]]` of every built-in scenario small enough for a debug-mode
//! all-pairs sweep, build the case's schemes exactly as `run_scenario`
//! would and demand `routecheck` proves them sound — no livelocks, dead
//! ports, header overflows, or wrong deliveries anywhere in the state
//! space.  A scheme that ships in a scenario but cannot be proven sound
//! is a bug in the scheme, the builder, or the checker; all three are
//! worth failing the suite over.

use std::collections::HashSet;

use trafficlab::{named_scenarios, GraphSpec};

/// Vertex count of a spec without building it (exact for every variant).
fn spec_n(spec: &GraphSpec) -> usize {
    match *spec {
        GraphSpec::RandomConnected { n, .. }
        | GraphSpec::RandomRegular { n, .. }
        | GraphSpec::CompleteModular { n }
        | GraphSpec::RandomTree { n, .. }
        | GraphSpec::Theorem1 { n, .. }
        | GraphSpec::Ba { n, .. }
        | GraphSpec::PowerLaw { n, .. } => n,
        GraphSpec::Grid { rows, cols } => rows * cols,
        GraphSpec::Hypercube { dim } => 1 << dim,
    }
}

#[test]
fn builtin_scenario_schemes_are_statically_sound() {
    // Debug-mode budget: the release CLI gate in CI covers n = 1024 and
    // up; here we sweep every case that stays comfortably under that.
    const MAX_N: usize = 1100;
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut checked = 0usize;
    for scenario in named_scenarios() {
        for case in &scenario.cases {
            if spec_n(&case.graph) > MAX_N {
                continue;
            }
            let graph_label = case.graph.spec_string();
            let mut built = None;
            for scheme in &case.schemes {
                let scheme_label = scheme.spec_string();
                if !seen.insert((graph_label.clone(), scheme_label.clone())) {
                    continue;
                }
                let built = built.get_or_insert_with(|| case.graph.build());
                let inst = match scheme.build(&built.graph, &built.hints) {
                    Ok(inst) => inst,
                    // Schemes a scenario lists but the family rejects
                    // (e.g. e-cube on a non-hypercube) are skipped by
                    // run_scenario too.
                    Err(_) => continue,
                };
                let report =
                    routecheck::verify_instance(&built.graph, None, &inst, &scheme_label, threads);
                assert_eq!(
                    report.verdict,
                    routecheck::Verdict::Sound,
                    "scenario '{}': scheme '{scheme_label}' on {graph_label} \
                     is unsound: {}",
                    scenario.name,
                    report.failure_note().unwrap_or_default()
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 4,
        "the gate must actually exercise schemes (checked {checked})"
    );
}
