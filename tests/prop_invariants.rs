//! Property-based integration tests over randomized inputs: the core
//! invariants of the reproduction must hold for *every* generated instance,
//! not just the hand-picked ones.

use proptest::prelude::*;
use universal_routing::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shortest-path routing tables achieve stretch exactly 1 on every
    /// connected random graph, under every tie-break.
    #[test]
    fn prop_tables_have_stretch_one(n in 8usize..40, p in 0.05f64..0.4, seed in 0u64..1000) {
        let g = generators::random_connected(n, p, seed);
        let dm = DistanceMatrix::all_pairs(&g);
        let r = TableRouting::from_distances(&g, &dm, TieBreak::Seeded(seed));
        let rep = stretch_factor(&g, &dm, &r).unwrap();
        prop_assert!((rep.max_stretch - 1.0).abs() < 1e-12);
    }

    /// The Lemma 2 construction is forcing for every random row-normalized
    /// matrix, and every shortest-path routing respects the forced ports.
    #[test]
    fn prop_constraint_graphs_force_every_routing(
        p in 1usize..6, q in 2usize..10, d in 2u32..5, seed in 0u64..1000
    ) {
        let m = ConstraintMatrix::random(p, q, d, seed);
        let cg = ConstraintGraph::build(&m);
        prop_assert!(constraints::verify::verify_forcing_structure(&cg).is_ok());
        let r = TableRouting::shortest_paths(&cg.graph, TieBreak::Seeded(seed ^ 7));
        prop_assert!(constraints::verify::verify_routing_respects_constraints(&cg, &r).is_ok());
        prop_assert!(cg.graph.num_nodes() <= cg.lemma2_order_bound());
    }

    /// Probing the constrained routers of a constraint graph always
    /// reconstructs the planted matrix (the Theorem 1 argument).
    #[test]
    fn prop_reconstruction_round_trip(
        p in 1usize..5, q in 2usize..9, d in 2u32..5, seed in 0u64..1000
    ) {
        let m = ConstraintMatrix::random(p, q, d, seed);
        let mut cg = ConstraintGraph::build(&m);
        cg.pad_to_order(cg.graph.num_nodes() + (seed % 7) as usize);
        let r = TableRouting::shortest_paths(&cg.graph, TieBreak::LowestNeighbor);
        let rebuilt = constraints::reconstruct::reconstruct_matrix(&cg, &r);
        prop_assert_eq!(rebuilt, cg.matrix);
    }

    /// Canonicalization is a class invariant: applying random row, column and
    /// per-row value permutations never changes the canonical form.
    #[test]
    fn prop_canonical_form_is_orbit_invariant(
        p in 1usize..5, q in 2usize..7, d in 2u32..4, seed in 0u64..1000
    ) {
        let m = ConstraintMatrix::random(p, q, d, seed);
        let mut rng = graphkit::Xoshiro256::new(seed ^ 0xFACE);
        let rp = rng.permutation(p);
        let cp = rng.permutation(q);
        let mut x = m.permute_rows(&rp).permute_columns(&cp);
        for i in 0..p {
            let alphabet = x.row(i).iter().map(|&v| v as usize).max().unwrap();
            let vp: Vec<u32> = rng.permutation(alphabet).into_iter().map(|v| v as u32).collect();
            x = x.permute_row_values(i, &vp);
        }
        prop_assert_eq!(
            constraints::canonical::canonical_form(&m),
            constraints::canonical::canonical_form(&x)
        );
    }

    /// The landmark scheme never exceeds stretch 3 and always delivers, on
    /// random connected graphs.
    #[test]
    fn prop_landmark_scheme_guarantee(n in 8usize..36, p in 0.08f64..0.35, seed in 0u64..500) {
        let g = generators::random_connected(n, p, seed);
        let inst = LandmarkScheme::new(seed).build(&g);
        let dm = DistanceMatrix::all_pairs(&g);
        let rep = stretch_factor(&g, &dm, inst.routing.as_ref()).unwrap();
        prop_assert!(rep.max_stretch <= 3.0 + 1e-9);
    }

    /// The k-interval scheme is shortest-path and its memory never exceeds
    /// the raw table encoding by more than the per-interval overhead factor.
    #[test]
    fn prop_interval_scheme_consistency(n in 8usize..32, seed in 0u64..500) {
        let g = generators::random_connected(n, 0.15, seed);
        let kirs = KIntervalScheme::default().build(&g);
        let dm = DistanceMatrix::all_pairs(&g);
        let rep = stretch_factor(&g, &dm, kirs.routing.as_ref()).unwrap();
        prop_assert!((rep.max_stretch - 1.0).abs() < 1e-12);
        prop_assert!(kirs.memory.local() >= 1);
    }

    /// Graph invariants: every generated connected family really is connected
    /// and its distance matrix is a metric consistent with the edges.
    #[test]
    fn prop_distance_matrix_is_consistent(n in 4usize..40, seed in 0u64..500) {
        let g = generators::random_connected(n, 0.1, seed);
        let dm = DistanceMatrix::all_pairs(&g);
        prop_assert!(dm.is_connected());
        prop_assert!(dm.validate_against(&g).is_ok());
    }
}
