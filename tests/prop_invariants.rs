//! Property-based integration tests over randomized inputs: the core
//! invariants of the reproduction must hold for *every* generated instance,
//! not just the hand-picked ones.
//!
//! The random cases are driven by the repository's own deterministic
//! [`graphkit::Xoshiro256`] generator (this workspace builds offline, so no
//! external property-testing framework is available): each property draws a
//! fixed number of cases from seeded parameter ranges, and every failure
//! message carries the case's parameters so it can be replayed exactly.

use graphkit::Xoshiro256;
use universal_routing::prelude::*;

const CASES: usize = 24;

/// Draws `CASES` pseudo-random case indices; the closure receives a
/// per-case RNG to sample its parameters from.
fn for_each_case(property_seed: u64, mut body: impl FnMut(usize, &mut Xoshiro256)) {
    let mut rng = Xoshiro256::new(property_seed);
    for case in 0..CASES {
        let mut case_rng = rng.split();
        body(case, &mut case_rng);
    }
}

/// Shortest-path routing tables achieve stretch exactly 1 on every connected
/// random graph, under every tie-break.
#[test]
fn prop_tables_have_stretch_one() {
    for_each_case(0xA11CE, |case, rng| {
        let n = rng.gen_range_inclusive(8, 39);
        let p = 0.05 + 0.35 * rng.next_f64();
        let seed = rng.next_u64() % 1000;
        let g = generators::random_connected(n, p, seed);
        let dm = DistanceMatrix::all_pairs(&g);
        let r = TableRouting::from_distances(&g, &dm, TieBreak::Seeded(seed));
        let rep = stretch_factor(&g, &dm, &r).unwrap();
        assert!(
            (rep.max_stretch - 1.0).abs() < 1e-12,
            "case {case}: n={n} p={p} seed={seed}"
        );
    });
}

/// The Lemma 2 construction is forcing for every random row-normalized
/// matrix, and every shortest-path routing respects the forced ports.
#[test]
fn prop_constraint_graphs_force_every_routing() {
    for_each_case(0xB0B, |case, rng| {
        let p = rng.gen_range_inclusive(1, 5);
        let q = rng.gen_range_inclusive(2, 9);
        let d = rng.gen_range_inclusive(2, 4) as u32;
        let seed = rng.next_u64() % 1000;
        let m = ConstraintMatrix::random(p, q, d, seed);
        let cg = ConstraintGraph::build(&m);
        assert!(
            constraints::verify::verify_forcing_structure(&cg).is_ok(),
            "case {case}: p={p} q={q} d={d} seed={seed}"
        );
        let r = TableRouting::shortest_paths(&cg.graph, TieBreak::Seeded(seed ^ 7));
        assert!(
            constraints::verify::verify_routing_respects_constraints(&cg, &r).is_ok(),
            "case {case}: p={p} q={q} d={d} seed={seed}"
        );
        assert!(cg.graph.num_nodes() <= cg.lemma2_order_bound());
    });
}

/// Probing the constrained routers of a constraint graph always reconstructs
/// the planted matrix (the Theorem 1 argument).
#[test]
fn prop_reconstruction_round_trip() {
    for_each_case(0xC0DE, |case, rng| {
        let p = rng.gen_range_inclusive(1, 4);
        let q = rng.gen_range_inclusive(2, 8);
        let d = rng.gen_range_inclusive(2, 4) as u32;
        let seed = rng.next_u64() % 1000;
        let m = ConstraintMatrix::random(p, q, d, seed);
        let mut cg = ConstraintGraph::build(&m);
        cg.pad_to_order(cg.graph.num_nodes() + (seed % 7) as usize);
        let r = TableRouting::shortest_paths(&cg.graph, TieBreak::LowestNeighbor);
        let rebuilt = constraints::reconstruct::reconstruct_matrix(&cg, &r);
        assert_eq!(
            rebuilt, cg.matrix,
            "case {case}: p={p} q={q} d={d} seed={seed}"
        );
    });
}

/// Canonicalization is a class invariant: applying random row, column and
/// per-row value permutations never changes the canonical form.
#[test]
fn prop_canonical_form_is_orbit_invariant() {
    for_each_case(0xFACE, |case, rng| {
        let p = rng.gen_range_inclusive(1, 4);
        let q = rng.gen_range_inclusive(2, 6);
        let d = rng.gen_range_inclusive(2, 3) as u32;
        let seed = rng.next_u64() % 1000;
        let m = ConstraintMatrix::random(p, q, d, seed);
        let rp = rng.permutation(p);
        let cp = rng.permutation(q);
        let mut x = m.permute_rows(&rp).permute_columns(&cp);
        for i in 0..p {
            let alphabet = x.row(i).iter().map(|&v| v as usize).max().unwrap();
            let vp: Vec<u32> = rng
                .permutation(alphabet)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            x = x.permute_row_values(i, &vp);
        }
        assert_eq!(
            constraints::canonical::canonical_form(&m),
            constraints::canonical::canonical_form(&x),
            "case {case}: p={p} q={q} d={d} seed={seed}"
        );
    });
}

/// The landmark scheme never exceeds stretch 3 and always delivers, on
/// random connected graphs.
#[test]
fn prop_landmark_scheme_guarantee() {
    for_each_case(0x1A2B, |case, rng| {
        let n = rng.gen_range_inclusive(8, 35);
        let p = 0.08 + 0.27 * rng.next_f64();
        let seed = rng.next_u64() % 500;
        let g = generators::random_connected(n, p, seed);
        let inst = LandmarkScheme::new(seed).build(&g);
        let dm = DistanceMatrix::all_pairs(&g);
        let rep = stretch_factor(&g, &dm, inst.routing.as_ref()).unwrap();
        assert!(
            rep.max_stretch <= 3.0 + 1e-9,
            "case {case}: n={n} p={p} seed={seed} stretch={}",
            rep.max_stretch
        );
    });
}

/// The k-interval scheme is shortest-path and its memory never exceeds the
/// raw table encoding by more than the per-interval overhead factor.
#[test]
fn prop_interval_scheme_consistency() {
    for_each_case(0x2B3C, |case, rng| {
        let n = rng.gen_range_inclusive(8, 31);
        let seed = rng.next_u64() % 500;
        let g = generators::random_connected(n, 0.15, seed);
        let kirs = KIntervalScheme::default().build(&g);
        let dm = DistanceMatrix::all_pairs(&g);
        let rep = stretch_factor(&g, &dm, kirs.routing.as_ref()).unwrap();
        assert!(
            (rep.max_stretch - 1.0).abs() < 1e-12,
            "case {case}: n={n} seed={seed}"
        );
        assert!(kirs.memory.local() >= 1);
    });
}

/// Graph invariants: every generated connected family really is connected
/// and its distance matrix is a metric consistent with the edges.
#[test]
fn prop_distance_matrix_is_consistent() {
    for_each_case(0x3C4D, |case, rng| {
        let n = rng.gen_range_inclusive(4, 39);
        let seed = rng.next_u64() % 500;
        let g = generators::random_connected(n, 0.1, seed);
        let dm = DistanceMatrix::all_pairs(&g);
        assert!(dm.is_connected(), "case {case}: n={n} seed={seed}");
        assert!(
            dm.validate_against(&g).is_ok(),
            "case {case}: n={n} seed={seed}"
        );
    });
}
