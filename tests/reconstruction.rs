//! Integration test: the full Theorem 1 reconstruction argument across
//! crates (graphkit → routemodel → constraints), including adversarial
//! relabelings of the constrained routers.

use universal_routing::prelude::*;

#[test]
fn reconstruction_survives_adversarial_port_and_vertex_relabeling() {
    let (cg, _params) = constraints::theorem1::build_worst_case_instance(160, 0.4, 11);

    // Adversary relabels the ports of every constrained vertex.
    let mut g2 = cg.graph.clone();
    let mut rng = graphkit::Xoshiro256::new(99);
    for &a in &cg.constrained {
        let d = g2.degree(a);
        let perm = rng.permutation(d);
        g2.permute_ports(a, &perm);
    }
    let mut relabeled = cg.clone();
    relabeled.graph = g2;

    // Any shortest-path routing function on the relabeled graph is still
    // pinned down pair by pair, and the probe yields a matrix equivalent to
    // the planted one (per-row value permutations = the port relabelings).
    let r = TableRouting::shortest_paths(&relabeled.graph, TieBreak::HighestNeighbor);
    let probed = constraints::reconstruct::reconstruct_matrix(&relabeled, &r);
    // q is large here, so compare through the heuristic class representative,
    // which is invariant under row and per-row value permutations (no column
    // permutation was applied by the adversary).
    let a = constraints::canonical::canonical_form_heuristic(&probed);
    let b = constraints::canonical::canonical_form_heuristic(&cg.matrix);
    assert_eq!(a, b, "probe must stay in the ≡-class of the planted matrix");
}

#[test]
fn different_routing_functions_reconstruct_the_same_matrix() {
    let (cg, _) = constraints::theorem1::build_worst_case_instance(128, 0.5, 5);
    let mut matrices = Vec::new();
    for tie in [
        TieBreak::LowestPort,
        TieBreak::LowestNeighbor,
        TieBreak::HighestNeighbor,
        TieBreak::Seeded(1),
        TieBreak::Seeded(2),
    ] {
        let r = TableRouting::shortest_paths(&cg.graph, tie);
        matrices.push(constraints::reconstruct::reconstruct_matrix(&cg, &r));
    }
    for m in &matrices {
        assert_eq!(
            m, &cg.matrix,
            "every stretch-1 routing reconstructs the same matrix"
        );
    }
}

#[test]
fn k_interval_and_landmark_schemes_on_the_worst_case_graph() {
    // Universal schemes still work on the worst-case family; the stretch-1
    // ones must respect the constraints, the landmark scheme (stretch < 3)
    // need not.
    let (cg, _) = constraints::theorem1::build_worst_case_instance(96, 0.4, 9);
    let kirs = KIntervalScheme::default().build(&cg.graph);
    // KIntervalRouting is shortest-path, so it must obey the forced ports.
    // We verify through the probe equality.
    let rebuilt_rows: Vec<Vec<u32>> = cg
        .constrained
        .iter()
        .map(|&a| {
            cg.targets
                .iter()
                .map(|&b| match kirs.routing.port(a, &kirs.routing.init(a, b)) {
                    Action::Forward(p) => p as u32 + 1,
                    Action::Deliver => panic!("must forward"),
                })
                .collect()
        })
        .collect();
    let rebuilt = ConstraintMatrix::from_rows(rebuilt_rows);
    assert_eq!(rebuilt, cg.matrix);

    // The landmark scheme respects its stretch guarantee on this graph too.
    let lm = LandmarkScheme::new(4).build(&cg.graph);
    let dm = DistanceMatrix::all_pairs(&cg.graph);
    let s = stretch_factor(&cg.graph, &dm, lm.routing.as_ref()).unwrap();
    assert!(s.max_stretch < 3.0 + 1e-9);
}

#[test]
fn encoding_cost_tracks_the_information_bound_across_sizes() {
    for (n, theta) in [(128usize, 0.5f64), (256, 0.5), (256, 0.35)] {
        let (cg, _) = constraints::theorem1::build_worst_case_instance(n, theta, 3);
        let r = TableRouting::shortest_paths(&cg.graph, TieBreak::LowestPort);
        let cost = constraints::reconstruct::describe_encoding_cost(&cg, &r);
        let lhs = (cost.constrained_router_bits + cost.mb_bits + cost.mc_bits) as f64;
        assert!(lhs >= cost.class_information_bits, "n={n}, theta={theta}");
    }
}
