//! The sparse landmark pipeline, end to end: seed-for-seed equivalence with
//! the dense reference builder across graph families, and the trafficlab
//! cross-check that the scheme now builds and routes at `n = 131072` with
//! measured stretch `< 3` — the Table 1 row the dense builder could never
//! reach (its matrix alone would be 64 GiB).

use graphkit::generators;
use routeschemes::landmark::{LandmarkRouting, LandmarkScheme};
use routeschemes::{CompactScheme, GraphHints, SchemeKind};
use trafficlab::{run_workload, EngineConfig, Workload};

/// Seed-for-seed, the sparse builder must reproduce the dense builder's
/// `landmarks`/`home`/`toward_landmark`/`direct` tables bit for bit: same
/// home-landmark tie-breaks, same first shortest-path ports, same cluster
/// sets.  Cycles (antipodal ties), grids (many equal-length paths) and
/// random graphs all exercise different tie-break paths.
#[test]
fn sparse_and_dense_builders_agree_on_every_family_and_seed() {
    let families: Vec<(&str, graphkit::Graph)> = vec![
        ("odd cycle", generators::cycle(41)),
        ("even cycle", generators::cycle(64)),
        ("grid", generators::grid(9, 13)),
        ("tall grid", generators::grid(3, 40)),
        ("sparse random", generators::random_connected(150, 0.025, 2)),
        ("dense random", generators::random_connected(120, 0.2, 3)),
        ("tree", generators::random_tree(100, 5)),
    ];
    for (label, g) in &families {
        for seed in [0u64, 1, 0xC0FFEE, 0x7AFF1C] {
            let sparse = LandmarkRouting::build(g, seed);
            let dense = LandmarkRouting::build_dense(g, seed);
            assert_eq!(sparse, dense, "{label}, seed {seed}");
        }
    }
}

/// The scheme built by the sparse pipeline keeps its `< 3` stretch promise
/// under the block-streamed engine at a size where the dense matrix still
/// fits, so the whole all-pairs space can be checked exactly.
#[test]
fn sparse_landmark_scheme_keeps_stretch_under_three_all_pairs() {
    let g = generators::random_connected(512, 8.0 / 512.0, 0xC5A);
    let inst = LandmarkScheme::default().build(&g);
    let plan = Workload::AllPairs.compile(g.num_nodes());
    let rep = run_workload(
        &g,
        inst.routing.as_ref(),
        &plan,
        &EngineConfig {
            threads: 2,
            block_rows: 32,
            track_congestion: false,
        },
    )
    .expect("landmark routing must deliver every pair");
    assert!(
        rep.stretch.max_stretch < 3.0 + 1e-9,
        "measured stretch {} breaks the guarantee",
        rep.stretch.max_stretch
    );
    assert_eq!(
        rep.routed_messages,
        (g.num_nodes() * (g.num_nodes() - 1)) as u64
    );
}

/// The registry now classifies the landmark scheme as large-graph capable,
/// so the `n ≥ 10^5` scenarios stop skipping it.
#[test]
fn registry_classifies_landmark_as_large_graph_capable() {
    assert!(SchemeKind::Landmark.scales_to_large_graphs());
    // And it still builds through the registry on an ordinary graph.
    let g = generators::random_connected(256, 0.05, 1);
    assert!(SchemeKind::Landmark
        .default_spec()
        .build(&g, &GraphHints::none())
        .is_ok());
}

/// The acceptance point: the landmark scheme builds at `n = 131072` — no
/// dense matrix anywhere — and its measured stretch over a sampled workload
/// stays below 3.  The build alone takes ~1 minute on one core, so the test
/// is ignored by default; CI covers the same point through the
/// `landmark-130k` trafficlab scenario step (which also gates on the stretch
/// guarantee and exits non-zero when it breaks).
#[test]
#[ignore = "~2 min on one core; run with --ignored or via `trafficlab run landmark-130k` (CI does)"]
fn landmark_scheme_builds_and_routes_at_131072() {
    let n = 131_072;
    let g = generators::random_regular_like(n, 8, 0xB16);
    let inst = LandmarkScheme::default().build(&g);
    let plan = Workload::SampledSources {
        sources: 64,
        dests_per_source: 256,
        seed: 11,
    }
    .compile(n);
    let rep = run_workload(
        &g,
        inst.routing.as_ref(),
        &plan,
        &EngineConfig {
            threads: 0,
            block_rows: 1,
            track_congestion: false,
        },
    )
    .expect("landmark routing must deliver");
    assert!(
        rep.stretch.max_stretch < 3.0 + 1e-9,
        "measured stretch {} breaks the guarantee at n = {n}",
        rep.stretch.max_stretch
    );
    // Õ(√n) memory in practice: orders of magnitude below the n·log n bits
    // full tables would need (≈ 2.2 Mbit per router at this n).
    let table_bits = (n as u64 - 1) * 17;
    assert!(
        inst.memory.local() * 10 < table_bits,
        "landmark local memory {} is not clearly below table memory {table_bits}",
        inst.memory.local()
    );
}
