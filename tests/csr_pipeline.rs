//! Property tests for the CSR graph core and the parallel stretch pipeline.
//!
//! Two contracts are pinned down here:
//!
//! * the CSR [`Graph`] is **observationally identical** to the insertion-order
//!   semantics of the incremental builder path (`Graph::new` + `add_edge`):
//!   `neighbors`, `degree` and the port labels round-trip through
//!   [`graphkit::GraphBuilder`] and [`Graph::from_edges`] alike;
//! * the parallel and sampled stretch sweeps agree with the sequential sweep
//!   on the Petersen graph, hypercubes and random connected graphs.
//!
//! Cases are driven by the repository's deterministic RNG; failure messages
//! carry the parameters needed to replay a case.

use graphkit::{GraphBuilder, Xoshiro256};
use routemodel::stretch::{sampled_pairs, stretch_factor_with_threads, stretch_sampled};
use routemodel::stretch_over_pairs;
use universal_routing::prelude::*;

/// Draws a random edge sequence (orientation and order preserved, no
/// duplicates) on `n` vertices.
fn random_edge_sequence(
    n: usize,
    target_edges: usize,
    rng: &mut Xoshiro256,
) -> Vec<(usize, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    let mut attempts = 0;
    while edges.len() < target_edges && attempts < 20 * target_edges {
        attempts += 1;
        let u = rng.gen_range(n);
        let v = rng.gen_range(n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            // random orientation is part of the contract being tested
            edges.push((u, v));
        }
    }
    edges
}

/// CSR construction is observationally identical to replaying `add_edge`
/// calls one at a time: same neighbors slices, degrees, and port labels.
#[test]
fn prop_csr_matches_incremental_insertion_order() {
    let mut rng = Xoshiro256::new(0xC5A1);
    for case in 0..32 {
        let n = rng.gen_range_inclusive(2, 40);
        let m = rng.gen_range_inclusive(1, n * (n - 1) / 2);
        let edges = random_edge_sequence(n, m, &mut rng);

        let batch = Graph::from_edges(n, &edges);
        let mut incremental = Graph::new(n);
        for &(u, v) in &edges {
            incremental.add_edge(u, v);
        }
        let mut builder = GraphBuilder::new(n);
        builder.edges(edges.iter().copied());
        let built = builder.build();

        assert_eq!(batch, incremental, "case {case}: n={n} edges={edges:?}");
        assert_eq!(batch, built, "case {case}: n={n} edges={edges:?}");
        assert!(batch.validate().is_ok(), "case {case}");
        for u in 0..n {
            assert_eq!(batch.degree(u), incremental.degree(u), "case {case} u={u}");
            assert_eq!(
                batch.neighbors(u),
                incremental.neighbors(u),
                "case {case} u={u}"
            );
        }
        // Port labels round-trip: port_to inverts port_target everywhere.
        for u in 0..n {
            for p in 0..batch.degree(u) {
                let v = batch.port_target(u, p);
                assert_eq!(batch.port_to(u, v), Some(p), "case {case} u={u} p={p}");
            }
        }
    }
}

/// `add_edges` (batch append) is observationally identical to appending the
/// same edges one `add_edge` call at a time on top of an existing graph.
#[test]
fn prop_batch_append_matches_incremental_append() {
    let mut rng = Xoshiro256::new(0xAB5E);
    for case in 0..16 {
        let n = rng.gen_range_inclusive(4, 30);
        let all = random_edge_sequence(n, n, &mut rng);
        let split = rng.gen_range(all.len().max(1));
        let (first, rest) = all.split_at(split);

        let mut batch = Graph::from_edges(n, first);
        batch.add_edges(rest);
        let mut incremental = Graph::from_edges(n, first);
        for &(u, v) in rest {
            incremental.add_edge(u, v);
        }
        assert_eq!(batch, incremental, "case {case}: split={split} all={all:?}");
    }
}

/// The three graph families the stretch agreement is asserted on.
fn stretch_families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("petersen", generators::petersen()),
        ("hypercube", generators::hypercube(6)),
        (
            "random-connected",
            generators::random_connected(90, 0.05, seed),
        ),
    ]
}

/// Parallel stretch must be bit-identical to the sequential sweep, for
/// shortest-path tables and for a deliberately stretchy routing function
/// (spanning-tree routing), across all three families.
#[test]
fn prop_parallel_stretch_bit_identical_across_families() {
    for seed in [3u64, 17, 92] {
        for (family, g) in stretch_families(seed) {
            let dm = DistanceMatrix::all_pairs(&g);
            let table = TableRouting::from_distances(&g, &dm, TieBreak::Seeded(seed));
            let tree = routeschemes::tree_routing::SpanningTreeScheme::default().build(&g);
            let functions: [&(dyn routemodel::RoutingFunction + Sync); 2] =
                [&table, tree.routing.as_ref()];
            for r in functions {
                let seq = stretch_factor_with_threads(&g, &dm, r, 1).unwrap();
                for threads in [2, 5, 16] {
                    let par = stretch_factor_with_threads(&g, &dm, r, threads).unwrap();
                    assert_eq!(
                        par.max_stretch.to_bits(),
                        seq.max_stretch.to_bits(),
                        "{family} seed={seed} threads={threads} ({})",
                        r.name()
                    );
                    assert_eq!(
                        par.avg_stretch.to_bits(),
                        seq.avg_stretch.to_bits(),
                        "{family} seed={seed} threads={threads} ({})",
                        r.name()
                    );
                    assert_eq!(par.max_pair, seq.max_pair, "{family} seed={seed}");
                    assert_eq!(par.max_route_len, seq.max_route_len, "{family} seed={seed}");
                    assert_eq!(par.pairs, seq.pairs, "{family} seed={seed}");
                }
            }
        }
    }
}

/// The sampled estimator must agree with a sequential sweep over the same
/// sample, and must report exact stretch 1 for shortest-path tables on all
/// three families (where every sampled pair has stretch 1).
#[test]
fn prop_sampled_stretch_agrees_with_sequential() {
    for seed in [7u64, 41] {
        for (family, g) in stretch_families(seed) {
            let n = g.num_nodes();
            let dm = DistanceMatrix::all_pairs(&g);
            let r = TableRouting::from_distances(&g, &dm, TieBreak::LowestNeighbor);
            let k = 300;
            let sampled = stretch_sampled(&g, &dm, &r, k, seed).unwrap();
            let direct = stretch_over_pairs(&g, &dm, &r, sampled_pairs(n, k, seed)).unwrap();
            assert_eq!(
                sampled.max_stretch.to_bits(),
                direct.max_stretch.to_bits(),
                "{family} seed={seed}"
            );
            assert_eq!(
                sampled.avg_stretch.to_bits(),
                direct.avg_stretch.to_bits(),
                "{family} seed={seed}"
            );
            assert_eq!(sampled.pairs, direct.pairs, "{family} seed={seed}");
            assert!(
                (sampled.max_stretch - 1.0).abs() < 1e-12,
                "{family} seed={seed}: tables are shortest-path"
            );
        }
    }
}
