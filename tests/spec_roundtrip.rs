//! The spec language end to end: seeded-fuzz round trips for all three
//! codecs (`parse ∘ spec_string = id` for graphs and workloads,
//! `parse_toml ∘ to_toml = id` for scenarios), and the refactor pin — the
//! built-in scenarios, now loaded from their TOML files, must be *exactly*
//! the scenarios that used to be compiled into `named_scenarios()`, so every
//! report they produce is identical to the pre-refactor output.

use graphkit::Xoshiro256;
use trafficlab::{
    find_scenario, landmark_strict, landmark_with_k, named_scenarios, run_scenario, Case,
    ChurnSpec, GraphSpec, Scenario, ScenarioSpec, StretchMode, WorkloadSpec, LANDMARK_SWEEP_KS,
    SAMPLED_STRETCH_PAIRS,
};

use routeschemes::{SchemeKind, SchemeSpec};

fn fuzz_graph_spec(rng: &mut Xoshiro256) -> GraphSpec {
    let n = 2 + rng.gen_range(1 << 20);
    let seed = rng.gen_range(1 << 30) as u64;
    match rng.gen_range(9) {
        0 => GraphSpec::RandomConnected {
            n,
            // Quarter-integer degrees exercise float formatting without
            // hitting numbers whose shortest form is long.
            avg_deg: (1 + rng.gen_range(64)) as f64 / 4.0,
            seed,
        },
        1 => GraphSpec::RandomRegular {
            n,
            degree: 1 + rng.gen_range(32),
            seed,
        },
        2 => GraphSpec::Grid {
            rows: 1 + rng.gen_range(512),
            cols: 1 + rng.gen_range(512),
        },
        3 => GraphSpec::Hypercube {
            dim: 1 + rng.gen_range(30),
        },
        4 => GraphSpec::CompleteModular { n },
        5 => GraphSpec::RandomTree { n, seed },
        6 => GraphSpec::Ba {
            n,
            m: 1 + rng.gen_range((n - 1).min(8)),
            seed,
        },
        7 => GraphSpec::PowerLaw {
            n,
            exponent: (201 + rng.gen_range(100)) as f64 / 100.0,
            seed,
        },
        _ => GraphSpec::Theorem1 {
            n,
            theta: (1 + rng.gen_range(100)) as f64 / 100.0,
            seed,
        },
    }
}

fn fuzz_workload_spec(rng: &mut Xoshiro256) -> WorkloadSpec {
    let messages = 1 + rng.gen_range(1 << 24) as u64;
    let seed = rng.gen_range(1 << 30) as u64;
    match rng.gen_range(9) {
        0 => WorkloadSpec::AllPairs,
        1 => WorkloadSpec::Uniform { messages, seed },
        2 => WorkloadSpec::Zipf {
            messages,
            exponent: (1 + rng.gen_range(300)) as f64 / 100.0,
            seed,
        },
        3 => WorkloadSpec::Permutations {
            rounds: 1 + rng.gen_range(512) as u32,
            seed,
        },
        4 => {
            let roots: Vec<usize> = (0..1 + rng.gen_range(6))
                .map(|_| rng.gen_range(1 << 16))
                .collect();
            WorkloadSpec::Broadcast { roots }
        }
        5 => WorkloadSpec::SampledSources {
            sources: 1 + rng.gen_range(4096),
            dests_per_source: 1 + rng.gen_range(4096),
            seed,
        },
        6 => WorkloadSpec::Bisection { messages, seed },
        7 => WorkloadSpec::WorstPerm {
            rounds: 1 + rng.gen_range(512) as u32,
            seed,
        },
        _ => WorkloadSpec::ConstrainedProbes,
    }
}

fn fuzz_scheme_spec(rng: &mut Xoshiro256) -> SchemeSpec {
    match rng.gen_range(4) {
        0 => SchemeSpec::default_for(SchemeKind::ALL[rng.gen_range(7)]),
        1 => landmark_with_k(1 + rng.gen_range(4096)),
        2 => landmark_strict(),
        _ => SchemeSpec::SpanningTree {
            root: rng.gen_range(1 << 16),
        },
    }
}

fn fuzz_churn_spec(rng: &mut Xoshiro256) -> ChurnSpec {
    ChurnSpec {
        // Percent-grid kills exercise float formatting while staying inside
        // the codec's open (0, 1) validity interval.
        kill: (1 + rng.gen_range(99)) as f64 / 100.0,
        rounds: 1 + rng.gen_range(8),
        seed: rng.gen_range(1 << 30) as u64,
    }
}

fn fuzz_stretch_mode(rng: &mut Xoshiro256) -> StretchMode {
    match rng.gen_range(4) {
        0 => StretchMode::Exact,
        1 => StretchMode::Sampled {
            // The default pair count rides along sometimes, so the fuzz
            // covers the canonical form that omits it.
            pairs: [SAMPLED_STRETCH_PAIRS, 1, 1024, 1 << 20][rng.gen_range(4)],
            seed: rng.gen_range(1 << 30) as u64,
        },
        _ => StretchMode::Auto,
    }
}

/// `parse ∘ spec_string = id` under seeded fuzzing, for the graph,
/// workload and churn codecs (the scheme codec has its own fuzz in
/// `tests/scheme_spec.rs`).
#[test]
fn random_graph_and_workload_specs_round_trip() {
    let mut rng = Xoshiro256::new(0x5CEC_1A16);
    for _ in 0..1000 {
        let g = fuzz_graph_spec(&mut rng);
        let rendered = g.spec_string();
        let reparsed = GraphSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("'{rendered}' failed to reparse: {e}"));
        assert_eq!(reparsed, g, "graph round trip of '{rendered}'");

        let w = fuzz_workload_spec(&mut rng);
        let rendered = w.spec_string();
        let reparsed = WorkloadSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("'{rendered}' failed to reparse: {e}"));
        assert_eq!(reparsed, w, "workload round trip of '{rendered}'");

        let c = fuzz_churn_spec(&mut rng);
        let rendered = c.spec_string();
        let reparsed = ChurnSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("'{rendered}' failed to reparse: {e}"));
        assert_eq!(reparsed, c, "churn round trip of '{rendered}'");
    }
}

/// `parse_toml ∘ to_toml = id` for whole scenarios, including names and
/// descriptions that need string escaping.
#[test]
fn random_scenario_specs_round_trip_through_toml() {
    let mut rng = Xoshiro256::new(0x70_4D11);
    let gnarly = [
        "plain",
        "with \"quotes\" inside",
        "back\\slash",
        "tabs\tand\nnewlines",
        "",
    ];
    for iter in 0..200 {
        let cases: Vec<Case> = (0..1 + rng.gen_range(4))
            .map(|_| {
                let mut graph = fuzz_graph_spec(&mut rng);
                if graph.num_nodes() < 2 {
                    // A 1x1 grid is a valid graph spec but no workload can
                    // run on it, and scenario loading rejects the pair.
                    graph = GraphSpec::Grid { rows: 2, cols: 2 };
                }
                let mut workload = fuzz_workload_spec(&mut rng);
                // Scenario loading validates cross-field consistency
                // (broadcast roots must fit the graph), so the fuzz must
                // produce consistent cases — only per-codec round trips may
                // range freely.
                if let WorkloadSpec::Broadcast { roots } = &mut workload {
                    let n = graph.num_nodes();
                    for r in roots.iter_mut() {
                        *r %= n;
                    }
                }
                Case {
                    graph,
                    workload,
                    schemes: (0..1 + rng.gen_range(4))
                        .map(|_| fuzz_scheme_spec(&mut rng))
                        .collect(),
                    block_rows: [0, 0, 1, 8, 64][rng.gen_range(5)],
                    churn: match rng.gen_range(3) {
                        0 => Some(fuzz_churn_spec(&mut rng)),
                        _ => None,
                    },
                    stretch: fuzz_stretch_mode(&mut rng),
                    verify: rng.gen_range(2) == 1,
                }
            })
            .collect();
        let spec = ScenarioSpec {
            name: format!("fuzz-{iter}"),
            description: gnarly[rng.gen_range(gnarly.len())].to_string(),
            cases,
        };
        let rendered = spec.to_toml();
        let reparsed = ScenarioSpec::parse_toml(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{rendered}"));
        assert_eq!(reparsed, spec, "scenario round trip of\n{rendered}");
    }
}

/// The scenario book exactly as it was compiled into `named_scenarios()`
/// before the TOML refactor (PR 4 state).  Everything the runner measures is
/// a deterministic function of these values, so `loaded == pre_refactor`
/// pins every built-in report bit-for-bit to its pre-refactor output.  The
/// one later addition is the static-verification axis: smoke's cases carry
/// `verify: true`, which gates (but never changes) the measurement.
fn pre_refactor_scenarios() -> Vec<Scenario> {
    let d = SchemeSpec::default_for;
    let universal = vec![
        d(SchemeKind::Table),
        d(SchemeKind::SpanningTree),
        d(SchemeKind::KInterval),
        d(SchemeKind::Landmark),
    ];
    vec![
        Scenario {
            name: "smoke".into(),
            description: "every registry scheme exercised once at n = 1024".into(),
            cases: vec![
                Case {
                    graph: GraphSpec::RandomConnected {
                        n: 1024,
                        avg_deg: 8.0,
                        seed: 0xC5A,
                    },
                    workload: WorkloadSpec::Uniform {
                        messages: 20_000,
                        seed: 1,
                    },
                    schemes: universal.clone(),
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: true,
                },
                Case {
                    graph: GraphSpec::Hypercube { dim: 10 },
                    workload: WorkloadSpec::Uniform {
                        messages: 20_000,
                        seed: 2,
                    },
                    schemes: vec![d(SchemeKind::Ecube), d(SchemeKind::SpanningTree)],
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: true,
                },
                Case {
                    graph: GraphSpec::Grid { rows: 32, cols: 32 },
                    workload: WorkloadSpec::Uniform {
                        messages: 20_000,
                        seed: 3,
                    },
                    schemes: vec![d(SchemeKind::DimensionOrder), d(SchemeKind::SpanningTree)],
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: true,
                },
                Case {
                    graph: GraphSpec::CompleteModular { n: 256 },
                    workload: WorkloadSpec::Uniform {
                        messages: 20_000,
                        seed: 4,
                    },
                    schemes: vec![d(SchemeKind::ModularComplete), d(SchemeKind::Table)],
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: true,
                },
            ],
        },
        Scenario {
            name: "uniform-1m".into(),
            description: "one million uniform messages on an n = 4096 random graph".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 4096,
                    avg_deg: 8.0,
                    seed: 0xC5A,
                },
                workload: WorkloadSpec::Uniform {
                    messages: 1_000_000,
                    seed: 7,
                },
                schemes: vec![d(SchemeKind::SpanningTree)],
                block_rows: 0,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        },
        Scenario {
            name: "sharded-130k".into(),
            description: "block-streamed sweep at n = 131072 — no dense matrix can exist".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomRegular {
                    n: 131_072,
                    degree: 8,
                    seed: 0xB16,
                },
                workload: WorkloadSpec::SampledSources {
                    sources: 64,
                    dests_per_source: 256,
                    seed: 11,
                },
                schemes: vec![d(SchemeKind::SpanningTree)],
                block_rows: 1,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        },
        Scenario {
            name: "landmark-130k".into(),
            description: "landmark routing (stretch < 3) built sparsely at n = 131072".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomRegular {
                    n: 131_072,
                    degree: 8,
                    seed: 0xB16,
                },
                workload: WorkloadSpec::SampledSources {
                    sources: 64,
                    dests_per_source: 256,
                    seed: 11,
                },
                schemes: vec![
                    d(SchemeKind::Landmark),
                    landmark_strict(),
                    d(SchemeKind::SpanningTree),
                ],
                block_rows: 1,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        },
        Scenario {
            name: "landmark-sweep".into(),
            description: "bits-vs-stretch curve: landmark k swept over a decade at n = 4096".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomConnected {
                    n: 4096,
                    avg_deg: 8.0,
                    seed: 0xC5A,
                },
                workload: WorkloadSpec::SampledSources {
                    sources: 128,
                    dests_per_source: 128,
                    seed: 21,
                },
                schemes: LANDMARK_SWEEP_KS
                    .iter()
                    .map(|&k| landmark_with_k(k))
                    .collect(),
                block_rows: 0,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        },
        Scenario {
            name: "zipf-hotspot".into(),
            description: "Zipf-skewed destinations vs uniform on the same graph".into(),
            cases: vec![
                Case {
                    graph: GraphSpec::RandomConnected {
                        n: 2048,
                        avg_deg: 8.0,
                        seed: 0xC5A,
                    },
                    workload: WorkloadSpec::Zipf {
                        messages: 200_000,
                        exponent: 1.1,
                        seed: 5,
                    },
                    schemes: universal.clone(),
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: false,
                },
                Case {
                    graph: GraphSpec::RandomConnected {
                        n: 2048,
                        avg_deg: 8.0,
                        seed: 0xC5A,
                    },
                    workload: WorkloadSpec::Uniform {
                        messages: 200_000,
                        seed: 5,
                    },
                    schemes: universal,
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: false,
                },
            ],
        },
        Scenario {
            name: "broadcast".into(),
            description: "one-to-all broadcasts; congestion concentrates near the roots".into(),
            cases: vec![Case {
                graph: GraphSpec::RandomTree { n: 4096, seed: 9 },
                workload: WorkloadSpec::Broadcast {
                    roots: vec![0, 1, 2, 3],
                },
                schemes: vec![d(SchemeKind::SpanningTree)],
                block_rows: 1,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        },
        Scenario {
            name: "permutation-cube".into(),
            description: "random permutation rounds on the 10-cube".into(),
            cases: vec![Case {
                graph: GraphSpec::Hypercube { dim: 10 },
                workload: WorkloadSpec::Permutations {
                    rounds: 64,
                    seed: 13,
                },
                schemes: vec![d(SchemeKind::Ecube), d(SchemeKind::Table)],
                block_rows: 0,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            }],
        },
        Scenario {
            name: "theorem1".into(),
            description: "constrained-vertex probes on Theorem 1 worst-case instances".into(),
            cases: vec![
                Case {
                    graph: GraphSpec::Theorem1 {
                        n: 1024,
                        theta: 0.5,
                        seed: 17,
                    },
                    workload: WorkloadSpec::ConstrainedProbes,
                    schemes: vec![
                        d(SchemeKind::Table),
                        d(SchemeKind::SpanningTree),
                        d(SchemeKind::Landmark),
                        landmark_strict(),
                    ],
                    block_rows: 0,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: false,
                },
                Case {
                    graph: GraphSpec::Theorem1 {
                        n: 16384,
                        theta: 0.5,
                        seed: 17,
                    },
                    workload: WorkloadSpec::ConstrainedProbes,
                    schemes: vec![
                        d(SchemeKind::Landmark),
                        landmark_strict(),
                        d(SchemeKind::SpanningTree),
                    ],
                    block_rows: 8,
                    churn: None,
                    stretch: StretchMode::Auto,
                    verify: false,
                },
            ],
        },
    ]
}

/// The refactor pin: every pre-refactor built-in, loaded from its TOML file,
/// is structurally identical to the old in-code definition — same graphs,
/// workloads, scheme lists (in order), and engine knobs.  The runner is a
/// deterministic function of these values, so the reports are identical too.
#[test]
fn toml_builtins_match_the_pre_refactor_in_code_book() {
    let expected = pre_refactor_scenarios();
    for want in &expected {
        let got = find_scenario(&want.name)
            .unwrap_or_else(|| panic!("built-in scenario '{}' vanished", want.name));
        assert_eq!(
            &got, want,
            "scenario '{}' drifted from its pre-refactor definition",
            want.name
        );
    }
    // The book may grow (the adversarial scenario is new) but never shrink.
    let names: Vec<String> = named_scenarios().into_iter().map(|s| s.name).collect();
    for want in &expected {
        assert!(names.contains(&want.name));
    }
}

/// A scenario run from TOML text measures exactly what the same scenario
/// built in code measures: identical stretch (bit-for-bit), congestion,
/// histograms, memory reports, skip notes — everything except wall-clock.
#[test]
fn toml_loaded_scenario_reports_match_in_code_definitions() {
    let in_code = Scenario {
        name: "mini".into(),
        description: "toml-vs-code pin".into(),
        cases: vec![
            Case {
                graph: GraphSpec::RandomConnected {
                    n: 48,
                    avg_deg: 6.0,
                    seed: 4,
                },
                workload: WorkloadSpec::Uniform {
                    messages: 400,
                    seed: 6,
                },
                schemes: vec![
                    SchemeSpec::default_for(SchemeKind::Table),
                    SchemeSpec::default_for(SchemeKind::SpanningTree),
                ],
                block_rows: 8,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            },
            Case {
                graph: GraphSpec::Grid { rows: 4, cols: 6 },
                workload: WorkloadSpec::Bisection {
                    messages: 300,
                    seed: 2,
                },
                schemes: vec![
                    SchemeSpec::default_for(SchemeKind::DimensionOrder),
                    SchemeSpec::default_for(SchemeKind::SpanningTree),
                ],
                block_rows: 4,
                churn: None,
                stretch: StretchMode::Auto,
                verify: false,
            },
        ],
    };
    let toml = "\
name = \"mini\"
description = \"toml-vs-code pin\"

[[case]]
graph = \"random?n=48&deg=6&seed=4\"
workload = \"uniform?messages=400&seed=6\"
schemes = [\"table\", \"tree\"]
block_rows = 8

[[case]]
graph = \"grid?rows=4&cols=6\"
workload = \"bisection?messages=300&seed=2\"
schemes = [\"grid\", \"tree\"]
block_rows = 4
";
    let loaded = ScenarioSpec::parse_toml(toml).unwrap();
    assert_eq!(loaded, in_code);
    let rep_a = run_scenario(&in_code, 2);
    let rep_b = run_scenario(&loaded, 2);
    assert_eq!(rep_a.errors, rep_b.errors);
    assert_eq!(rep_a.skipped, rep_b.skipped);
    assert_eq!(rep_a.results.len(), rep_b.results.len());
    assert!(!rep_a.results.is_empty());
    for (a, b) in rep_a.results.iter().zip(&rep_b.results) {
        assert_eq!(a.graph_label, b.graph_label);
        assert_eq!(a.workload_spec, b.workload_spec);
        assert_eq!(a.scheme_spec, b.scheme_spec);
        assert_eq!(a.local_bits, b.local_bits);
        assert_eq!(a.global_bits, b.global_bits);
        assert_eq!(a.within_guarantee, b.within_guarantee);
        // WorkloadReport equality covers stretch (bit-identical f64 fold),
        // congestion counters, length histograms and block accounting.
        assert_eq!(a.report, b.report);
    }
}

/// The landmark-sweep TOML still walks exactly the published decade.
#[test]
fn toml_landmark_sweep_matches_the_published_ks() {
    let sweep = find_scenario("landmark-sweep").unwrap();
    let specs: Vec<String> = sweep.cases[0]
        .schemes
        .iter()
        .map(|s| s.spec_string())
        .collect();
    let expected: Vec<String> = LANDMARK_SWEEP_KS
        .iter()
        .map(|k| format!("landmark?k={k}"))
        .collect();
    assert_eq!(specs, expected);
}
