//! Bit-identity of the lock-step batch kernel against the per-message path.
//!
//! `routemodel::route_batch_into` promises that everything an engine folds
//! from its callbacks — outcome counts, the order-sensitive f64 stretch
//! accumulation, per-arc congestion counters — is indistinguishable from
//! driving `route_with_limit_into` one message at a time.  This matrix pins
//! that promise for **every registry scheme**, batch sizes 1 / 7 / 256 /
//! 4096, and failed `GraphView`s (the churn interaction: stale tables
//! bouncing off dead links must produce the same `LinkDown`/`HopLimit`
//! outcomes either way).  Thread invariance of the batched engine is pinned
//! separately in `tests/trafficlab_pipeline.rs`.

use graphkit::{generators, FailureSet, Graph, GraphView, Xoshiro256};
use routemodel::labeling::modular_complete_labeling;
use routemodel::{
    default_hop_limit, route_batch_into, route_block_into, BatchScratch, DeliveryOutcome,
    RouteTrace, StretchAccumulator,
};
use routeschemes::{GraphHints, SchemeInstance, SchemeKind, SchemeSpec};

/// Every registry family on a graph it applies to.
fn registry_instances() -> Vec<(String, Graph, SchemeInstance)> {
    let mut out = Vec::new();
    let random = generators::random_connected(96, 0.08, 11);
    for kind in SchemeKind::ALL {
        let (g, hints) = match kind {
            SchemeKind::Ecube => (generators::hypercube(6), GraphHints::hypercube(6)),
            SchemeKind::DimensionOrder => (generators::grid(8, 8), GraphHints::grid(8, 8)),
            SchemeKind::ModularComplete => (modular_complete_labeling(24), GraphHints::none()),
            _ => (random.clone(), GraphHints::none()),
        };
        let spec = SchemeSpec::default_for(kind);
        let inst = spec
            .build(&g, &hints)
            .unwrap_or_else(|e| panic!("{} must build: {e}", spec.spec_string()));
        out.push((spec.spec_string(), g, inst));
    }
    out
}

/// The full observable record of routing one batch: the ordered `on_route`
/// events (whose ordered lengths determine every f64 stretch fold
/// bit-for-bit), a stretch fold over them, and the sorted hop multiset
/// (which determines every congestion counter).
struct Observed {
    routes: Vec<(usize, u32, DeliveryOutcome)>,
    stretch_bits: u64,
    hops: Vec<(usize, usize)>,
}

fn observe_block(g: GraphView, inst: &SchemeInstance, source: usize, dests: &[u32]) -> Observed {
    let limit = default_hop_limit(g.num_nodes());
    let mut routes = Vec::new();
    let mut hops = Vec::new();
    let mut acc = StretchAccumulator::new();
    let mut buf = RouteTrace::new();
    route_block_into(
        g,
        inst.routing.as_ref(),
        source,
        dests,
        limit,
        &mut buf,
        |t, tr, outcome| {
            routes.push((t, tr.len() as u32, outcome));
            if outcome.is_delivered() {
                acc.record(source, t, tr.len() as u32, 1);
                for (i, &p) in tr.ports.iter().enumerate() {
                    hops.push((tr.path[i], p));
                }
            }
        },
    )
    .unwrap();
    hops.sort_unstable();
    Observed {
        routes,
        stretch_bits: acc.into_report().avg_stretch.to_bits(),
        hops,
    }
}

fn observe_batch(
    g: GraphView,
    inst: &SchemeInstance,
    source: usize,
    dests: &[u32],
    scratch: &mut BatchScratch,
) -> Observed {
    let limit = default_hop_limit(g.num_nodes());
    let mut routes = Vec::new();
    let mut hops = Vec::new();
    let mut acc = StretchAccumulator::new();
    route_batch_into(
        g,
        inst.routing.as_ref(),
        source,
        dests,
        limit,
        scratch,
        true,
        |t, h, outcome| {
            routes.push((t, h, outcome));
            if outcome.is_delivered() {
                acc.record(source, t, h, 1);
            }
        },
        |u, p| hops.push((u, p)),
    )
    .unwrap();
    hops.sort_unstable();
    Observed {
        routes,
        stretch_bits: acc.into_report().avg_stretch.to_bits(),
        hops,
    }
}

/// `batch_size` destinations sampled with repetition (self-destinations
/// included on purpose: both paths must skip them identically).
fn sampled_dests(n: usize, batch_size: usize, seed: u64) -> Vec<u32> {
    let mut rng = Xoshiro256::new(seed);
    (0..batch_size).map(|_| rng.gen_range(n) as u32).collect()
}

fn assert_identical(
    view: GraphView,
    label: &str,
    inst: &SchemeInstance,
    scratch: &mut BatchScratch,
) {
    let n = view.num_nodes();
    for (bi, &batch_size) in [1usize, 7, 256, 4096].iter().enumerate() {
        // A few sources per batch size keeps the matrix fast while still
        // crossing the interesting source/landmark/corner cases.
        for (si, source) in [0usize, n / 2, n - 1].into_iter().enumerate() {
            let dests = sampled_dests(n, batch_size, 0xBA7C * (bi as u64 + 1) + si as u64);
            let block = observe_block(view, inst, source, &dests);
            let batch = observe_batch(view, inst, source, &dests, scratch);
            assert_eq!(
                block.routes, batch.routes,
                "{label}: batch {batch_size}, source {source}: route events diverge"
            );
            assert_eq!(
                block.stretch_bits, batch.stretch_bits,
                "{label}: batch {batch_size}, source {source}: stretch fold diverges"
            );
            assert_eq!(
                block.hops, batch.hops,
                "{label}: batch {batch_size}, source {source}: hop multiset diverges"
            );
        }
    }
}

#[test]
fn batched_routing_is_bit_identical_on_every_registry_scheme() {
    let mut scratch = BatchScratch::new();
    for (spec, g, inst) in registry_instances() {
        assert_identical(GraphView::full(&g), &spec, &inst, &mut scratch);
    }
}

#[test]
fn batched_routing_is_bit_identical_on_failed_views() {
    // Stale schemes routing over dead links: the per-message path turns
    // these into LinkDown / HopLimit outcomes; the batch must agree
    // event-for-event.  Kill 10% of links, scheme tables stay pristine.
    let mut scratch = BatchScratch::new();
    for (spec, g, inst) in registry_instances() {
        let f = FailureSet::sample(&g, 0.1, 0xDEAD ^ g.num_nodes() as u64);
        assert!(!f.is_empty(), "{spec}: failure sample must kill something");
        let view = GraphView::masked(&g, &f);
        assert_identical(view, &format!("{spec} (failed view)"), &inst, &mut scratch);
    }
}
