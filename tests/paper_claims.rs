//! Integration test: the headline quantitative claims of the paper, checked
//! end to end on concrete instances.

use universal_routing::prelude::*;

#[test]
fn claim_lemma1_bound_never_exceeds_exact_counts() {
    for (p, q, d) in [
        (2usize, 2usize, 2u32),
        (3, 3, 2),
        (2, 3, 3),
        (3, 4, 2),
        (2, 4, 3),
    ] {
        let exact = constraints::enumerate::enumerate_canonical_matrices(p, q, d).len() as f64;
        let bound = constraints::counting::lemma1_lower_bound_count(p, q, d);
        assert!(exact + 1e-9 >= bound, "({p},{q},{d})");
    }
}

#[test]
fn claim_lemma2_every_matrix_has_a_small_forcing_graph() {
    for seed in 0..10u64 {
        let m = ConstraintMatrix::random(3 + (seed % 4) as usize, 6, 4, seed);
        let cg = ConstraintGraph::build(&m);
        // order <= p(d+1) + q
        assert!(cg.graph.num_nodes() <= cg.lemma2_order_bound());
        // stretch-<2 forcing holds
        assert!(constraints::verify::verify_forcing_structure(&cg).is_ok());
        assert!((constraints::verify::forcing_stretch_bound(&cg) - 2.0).abs() < 1e-12);
    }
}

#[test]
fn claim_theorem1_tables_cannot_be_compressed_for_stretch_below_two() {
    // The certified per-router lower bound is a constant fraction of the
    // routing-table upper bound, and that fraction does not vanish as n grows
    // — which is exactly "routing tables can not be locally compressed
    // asymptotically in the worst-case".
    let fractions: Vec<f64> = [4096usize, 16384, 65536]
        .iter()
        .map(|&n| {
            let rep = constraints::theorem1::lower_bound(n, 0.5);
            rep.per_router_lower_bits / rep.table_upper_bits_per_router as f64
        })
        .collect();
    for (i, f) in fractions.iter().enumerate() {
        assert!(*f > 0.1, "fraction too small at index {i}: {f}");
    }
    // ... and it is non-decreasing towards its asymptotic constant.
    assert!(fractions[2] >= fractions[0] - 0.02);
}

#[test]
fn claim_theorem1_certifies_n_to_theta_routers() {
    // The number of certified high-memory routers grows roughly like n^θ.
    let a = constraints::theorem1::lower_bound(4096, 0.5).guaranteed_high_memory_routers as f64;
    let b = constraints::theorem1::lower_bound(65536, 0.5).guaranteed_high_memory_routers as f64;
    // n grows by 16, n^0.5 by 4: accept a generous window around 4.
    let growth = b / a;
    assert!(
        growth > 2.0 && growth < 8.0,
        "growth {growth} not ~ n^theta"
    );
}

#[test]
fn claim_upper_bound_routing_tables_match_on_the_worst_case_family() {
    // On an actual worst-case instance the raw routing tables of the
    // constrained routers stay within the O(n log n) upper bound, and the
    // scheme achieves stretch 1 — so the lower bound of Theorem 1 is tight up
    // to the constant factor.
    let (cg, params) = constraints::theorem1::build_worst_case_instance(256, 0.5, 13);
    let tables = TableScheme::default().build(&cg.graph);
    let n = cg.graph.num_nodes() as u64;
    let upper = (n - 1) * (64 - u64::from((n - 1).leading_zeros()));
    for &a in &cg.constrained {
        assert!(tables.memory.per_node[a] <= upper);
    }
    assert_eq!(params.n as u64, n);
    let dm = DistanceMatrix::all_pairs(&cg.graph);
    let s = stretch_factor(&cg.graph, &dm, tables.routing.as_ref()).unwrap();
    assert!((s.max_stretch - 1.0).abs() < 1e-12);
}

#[test]
fn claim_complete_graph_labels_matter() {
    // MEM_local(K_n, 1) = O(log n) for a good labeling, but an adversarial
    // port labeling forces ~ log2((n-1)!) bits at a router.
    let n = 96usize;
    let good = routemodel::labeling::modular_complete_labeling(n);
    let modular = routeschemes::ModularCompleteScheme.build(&good);
    let floor = routeschemes::complete::adversarial_lower_bound_bits(n);
    assert!(modular.memory.local() < 20);
    assert!(floor > 400.0, "log2(95!) is about 490 bits");
    let bad = routemodel::labeling::adversarial_port_labeling(&generators::complete(n), 5);
    let adv = routeschemes::AdversarialCompleteScheme.build(&bad);
    assert!(adv.memory.local() as f64 >= floor * 0.9);
}

#[test]
fn claim_hypercube_needs_only_logarithmic_memory() {
    let g = generators::hypercube(8);
    let inst = EcubeScheme.build(&g);
    let n = g.num_nodes() as f64;
    assert!((inst.memory.local() as f64) <= 3.0 * n.log2());
    let dm = DistanceMatrix::all_pairs(&g);
    let s = stretch_factor(&g, &dm, inst.routing.as_ref()).unwrap();
    assert!((s.max_stretch - 1.0).abs() < 1e-12);
}

#[test]
fn claim_figure1_matrix_exists_and_is_forced() {
    let fig = constraints::petersen::petersen_figure();
    assert_eq!((fig.matrix.num_rows(), fig.matrix.num_cols()), (5, 5));
    let r = TableRouting::shortest_paths(&fig.graph, TieBreak::Seeded(31));
    assert!(constraints::petersen::verify_figure_against_routing(&fig, &r).is_ok());
}
