//! The spec-era construction API, end to end through the facade crate:
//! bit-identity of the parameterized builders with the pre-spec defaults,
//! codec round-trips under seeded fuzzing, and the strict cluster rule on
//! the Theorem 1 worst-case instances it was built for.

use universal_routing::prelude::*;

use constraints::theorem1::build_worst_case_instance;
use routeschemes::landmark::LandmarkRouting;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("odd cycle", generators::cycle(41)),
        ("even cycle", generators::cycle(64)),
        ("grid", generators::grid(9, 13)),
        ("sparse random", generators::random_connected(150, 0.025, 2)),
        ("dense random", generators::random_connected(120, 0.2, 3)),
        ("tree", generators::random_tree(100, 5)),
    ]
}

/// The pinning property of the redesign: the spec
/// `landmark?k=⌈√n⌉&clusters=inclusive` must rebuild the pre-redesign
/// default (`LandmarkRouting::build`, hard-wired to `⌈√n⌉` inclusive
/// landmarks) **bit for bit**, seed for seed, family for family — the
/// parameterization added coordinates without moving the origin.
#[test]
fn explicit_sqrt_n_spec_is_bit_identical_to_the_pre_spec_default() {
    for (label, g) in &families() {
        let k = (g.num_nodes() as f64).sqrt().ceil() as usize;
        for seed in [0u64, 1, 0xC0FFEE, 0x7AFF1C] {
            let spec_str = format!("landmark?k={k}&clusters=inclusive&seed={seed}");
            let spec = SchemeSpec::parse(&spec_str).unwrap();
            let SchemeSpec::Landmark(cfg) = &spec else {
                panic!("{spec_str} must parse to a landmark spec");
            };
            let via_spec = LandmarkRouting::build_with(g, cfg);
            let pre_redesign = LandmarkRouting::build(g, seed);
            assert_eq!(via_spec, pre_redesign, "{label}, seed {seed}");

            // And the registry path produces the same memory report as the
            // pre-spec scheme wrapper did.
            let inst = spec.build(g, &GraphHints::none()).unwrap();
            let reference = LandmarkScheme::new(seed).build(g);
            assert_eq!(
                inst.memory.per_node, reference.memory.per_node,
                "{label}, seed {seed}: memory reports diverged"
            );
            assert_eq!(inst.guaranteed_stretch, reference.guaranteed_stretch);
        }
    }
}

/// Seeded fuzzing of the codec: any spec the generator can produce must
/// survive `spec_string ∘ parse` unchanged (`parse ∘ spec_string = id`).
#[test]
fn random_specs_round_trip_through_the_codec() {
    let mut rng = graphkit::Xoshiro256::new(0x5EEDC0DEC);
    for _ in 0..500 {
        let spec = match rng.gen_range(7) {
            0 => SchemeSpec::Table {
                tie: match rng.gen_range(4) {
                    0 => TieBreak::LowestPort,
                    1 => TieBreak::LowestNeighbor,
                    2 => TieBreak::HighestNeighbor,
                    _ => TieBreak::Seeded(rng.gen_range(1 << 20) as u64),
                },
            },
            1 => SchemeSpec::SpanningTree {
                root: rng.gen_range(2048),
            },
            2 => SchemeSpec::KInterval(KIntervalConfig {
                k: match rng.gen_range(3) {
                    0 => None,
                    _ => Some(1 + rng.gen_range(64)),
                },
                tie: if rng.gen_range(2) == 0 {
                    TieBreak::LowestNeighbor
                } else {
                    TieBreak::LowestPort
                },
            }),
            3 | 4 => SchemeSpec::Landmark(LandmarkConfig {
                landmarks: match rng.gen_range(3) {
                    0 => LandmarkCount::Auto,
                    1 => LandmarkCount::Count(1 + rng.gen_range(4096)),
                    _ => LandmarkCount::Rate((1 + rng.gen_range(1000)) as f64 / 1000.0),
                },
                cluster_rule: if rng.gen_range(2) == 0 {
                    ClusterRule::Inclusive
                } else {
                    ClusterRule::Strict
                },
                seed: rng.gen_range(1 << 30) as u64,
            }),
            5 => SchemeSpec::Ecube,
            _ => SchemeSpec::DimensionOrder,
        };
        let rendered = spec.spec_string();
        let reparsed = SchemeSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("'{rendered}' failed to reparse: {e}"));
        assert_eq!(reparsed, spec, "round trip of '{rendered}'");
    }
}

/// Bad params surface as typed [`SpecError`]s through the facade too.
#[test]
fn codec_rejections_are_typed() {
    assert!(matches!(
        SchemeSpec::parse("warp-drive"),
        Err(SpecError::UnknownKey { .. })
    ));
    assert!(matches!(
        SchemeSpec::parse("landmark?k=64&rate=0.5"),
        Err(SpecError::ConflictingParams { .. })
    ));
    assert!(matches!(
        SchemeSpec::parse("interval?k=-3"),
        Err(SpecError::InvalidValue { .. })
    ));
}

/// The strict cluster rule on the graphs it exists for: Theorem 1 worst-case
/// instances have tiny diameter, so the inclusive boundary
/// `d(w, v) = d(v, L)` fattens clusters far beyond `√n`; the strict rule
/// keeps only the interior plus the `≈ n/k` home-set handoff entries at the
/// landmarks, and must stay stretch-`< 3` exact.
#[test]
fn strict_rule_deflates_theorem1_clusters_and_keeps_stretch() {
    let (cg, _params) = build_worst_case_instance(1024, 0.5, 17);
    let g = &cg.graph;
    let inclusive = LandmarkRouting::build(g, 0x7AFF1C);
    let strict_cfg = LandmarkConfig {
        cluster_rule: ClusterRule::Strict,
        ..LandmarkConfig::default()
    };
    let strict = LandmarkRouting::build_with(g, &strict_cfg);
    let (ai, as_) = (
        inclusive.average_cluster_size(),
        strict.average_cluster_size(),
    );
    assert!(
        as_ * 2.0 < ai,
        "strict avg {as_:.1} must be well below inclusive avg {ai:.1}"
    );
    let dm = DistanceMatrix::all_pairs(g);
    let rep = stretch_factor(&g.clone(), &dm, &strict).unwrap();
    assert!(
        rep.max_stretch < 3.0 + 1e-9,
        "strict rule broke the stretch guarantee: {}",
        rep.max_stretch
    );
}

/// The acceptance point of the strict rule at scale: on the n = 16384
/// Theorem 1 instance the inclusive clusters average ≈ 2700; the strict rule
/// must pull the average back to `Õ(√n)` territory.  Construction at this
/// size takes tens of seconds per rule on one core, so the test is ignored
/// by default; CI covers the same instance through the `theorem1` scenario
/// step (which runs both rules and gates on the stretch guarantee).
#[test]
#[ignore = "~1 min on one core; run with --ignored (CI covers it via `trafficlab run theorem1`)"]
fn strict_rule_keeps_theorem1_16384_clusters_near_sqrt_n() {
    let (cg, _params) = build_worst_case_instance(16384, 0.5, 17);
    let g = &cg.graph;
    let inclusive = LandmarkRouting::build(g, 0x7AFF1C);
    let ai = inclusive.average_cluster_size();
    assert!(ai > 2000.0, "inclusive fattening regressed? avg {ai:.0}");
    let strict = LandmarkRouting::build_with(
        g,
        &LandmarkConfig {
            cluster_rule: ClusterRule::Strict,
            ..LandmarkConfig::default()
        },
    );
    let as_ = strict.average_cluster_size();
    // Õ(√16384) = Õ(128): well below the inclusive average, absolute bound
    // generous enough for seed wiggle.
    assert!(
        as_ < ai / 3.0 && as_ < 900.0,
        "strict avg {as_:.0} vs inclusive {ai:.0}"
    );
}
