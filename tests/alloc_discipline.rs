//! Allocation discipline, pinned by a counting global allocator.
//!
//! The workload engine and the static checker both promise *warm* hot loops
//! that never touch the heap: `route_batch_into` reuses its `BatchScratch`
//! across batches, and `Checker::check_dest` reuses its epoch-stamped arrays
//! across destinations.  Those promises are load-bearing — the throughput
//! and sweep numbers in CI assume them — so this test counts every
//! `alloc`/`realloc` crossing the global allocator and fails if a warm
//! iteration performs even one.
//!
//! Everything runs in a single `#[test]` because the counter is global:
//! Rust runs integration tests in threads, and a second concurrently
//! running test would bleed its allocations into our deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use graphkit::{generators, GraphView};
use routecheck::Checker;
use routemodel::{default_hop_limit, route_batch_into, BatchScratch};
use routeschemes::{GraphHints, SchemeKind};

/// Pass-through to the system allocator that counts every allocation.
/// The single `unsafe` block in this repository: every crate's library
/// code is `#![forbid(unsafe_code)]`, but `GlobalAlloc` is an unsafe
/// trait and a counting shim is the only way to observe the heap.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_hot_loops_do_not_allocate() {
    let n = 256;
    let g = generators::random_connected(n, 0.03, 17);
    let hints = GraphHints::none();
    let view = GraphView::from(&g);

    let inst = SchemeKind::Table
        .default_spec()
        .build(&g, &hints)
        .expect("table scheme builds on any connected graph");
    let r = &*inst.routing;

    // --- route_batch_into: zero allocations per message once warm -------
    let dests: Vec<u32> = (0..n as u32).collect();
    let hop_limit = default_hop_limit(n);
    let mut scratch = BatchScratch::new();
    let mut sink = 0u64;
    let run_batch = |scratch: &mut BatchScratch, sink: &mut u64, source: usize| {
        route_batch_into(
            view,
            r,
            source,
            &dests,
            hop_limit,
            scratch,
            true,
            |_, hops, outcome| {
                assert!(outcome.is_delivered(), "table routing must deliver");
                *sink += u64::from(hops);
            },
            |node, port| {
                std::hint::black_box((node, port));
            },
        )
        .expect("batch routing cannot fail on a live view");
    };

    // Warm-up: buffers (headers, cursors, hop log) grow to steady state.
    for s in 0..8 {
        run_batch(&mut scratch, &mut sink, s);
    }

    let before = allocations();
    let mut messages = 0u64;
    for s in 8..40 {
        run_batch(&mut scratch, &mut sink, s);
        messages += (n - 1) as u64;
    }
    let batch_allocs = allocations() - before;
    assert!(messages > 8_000, "the measured window must be non-trivial");
    assert_eq!(
        batch_allocs, 0,
        "warm route_batch_into allocated {batch_allocs} times across \
         {messages} messages; the steady state must be allocation-free"
    );

    // --- Checker::check_dest: zero allocations per destination once warm
    let mut checker = Checker::new();
    for d in 0..8 {
        let report = checker.check_dest(view, r, d);
        assert_eq!(report.counts.total(), (n - 1) as u64);
    }

    let before = allocations();
    let mut proven = 0u64;
    for d in 8..n {
        let report = checker.check_dest(view, r, d);
        proven += report.counts.get(routecheck::SourceClass::Proven);
    }
    let sweep_allocs = allocations() - before;
    assert_eq!(
        proven,
        (n as u64 - 8) * (n as u64 - 1),
        "the warm sweep must still prove every pair"
    );
    assert_eq!(
        sweep_allocs,
        0,
        "warm check_dest allocated {sweep_allocs} times across {} \
         destinations; the sweep must be allocation-free per destination",
        n - 8
    );

    // Keep the routed work observable so nothing above is optimised away.
    assert!(sink > 0);
}
