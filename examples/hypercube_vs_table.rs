//! The two extremes of Table 1 on one graph: e-cube routing on the hypercube
//! needs `O(log n)` bits per router, while an adversarially port-labeled
//! complete graph forces `Θ(n log n)` bits — and the Theorem 1 family shows
//! the latter behaviour is unavoidable for *every* universal scheme of
//! stretch `< 2`.
//!
//! Run with `cargo run --release --example hypercube_vs_table [k]`.

// Examples narrate their output to the console by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use routemodel::labeling::{adversarial_port_labeling, modular_complete_labeling};
use routeschemes::complete::adversarial_lower_bound_bits;
use universal_routing::prelude::*;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let n = 1usize << k;

    println!("== Hypercube H_{k} ({n} vertices) ==");
    let h = generators::hypercube(k);
    let ecube = EcubeScheme.build(&h);
    let tables_h = TableScheme::default().build(&h);
    let dm_h = DistanceMatrix::all_pairs(&h);
    let s = stretch_factor(&h, &dm_h, ecube.routing.as_ref()).unwrap();
    println!(
        "e-cube        : {:>8} bits/router, stretch {:.2}",
        ecube.memory.local(),
        s.max_stretch
    );
    println!(
        "routing tables: {:>8} bits/router, stretch 1.00",
        tables_h.memory.local()
    );
    println!(
        "compression factor of e-cube over tables: {:.0}x\n",
        tables_h.memory.local() as f64 / ecube.memory.local() as f64
    );

    println!("== Complete graph K_{n} ==");
    let good = modular_complete_labeling(n);
    let modular = routeschemes::ModularCompleteScheme.build(&good);
    println!(
        "modular port labeling     : {:>8} bits/router (closed-form routing)",
        modular.memory.local()
    );
    let bad = adversarial_port_labeling(&generators::complete(n), 99);
    let adv = routeschemes::AdversarialCompleteScheme.build(&bad);
    println!(
        "adversarial port labeling : {:>8} bits/router (full table)",
        adv.memory.local()
    );
    println!(
        "information-theoretic floor for the worst labeling: log2((n-1)!) = {:.0} bits\n",
        adversarial_lower_bound_bits(n)
    );

    println!("== Theorem 1 worst case at the same order ==");
    let rep = constraints::theorem1::lower_bound(n.max(64), 0.5);
    println!(
        "for stretch < 2, at least {} routers of some {}-vertex network need {:.0} bits each \
         (routing tables: {} bits)",
        rep.guaranteed_high_memory_routers,
        rep.params.n,
        rep.per_router_lower_bits,
        rep.table_upper_bits_per_router
    );
}
