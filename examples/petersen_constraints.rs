//! Figure 1 of the paper: the matrix of constraints of shortest paths on the
//! Petersen graph, rebuilt from scratch and verified against an actual
//! routing function.
//!
//! Run with `cargo run --example petersen_constraints`.

// Examples narrate their output to the console by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use universal_routing::prelude::*;

fn main() {
    let fig = constraints::petersen::petersen_figure();
    println!("Figure 1 reproduction — Petersen graph\n");
    println!(
        "constrained vertices A = {:?} (paper labels {:?})",
        fig.constrained,
        fig.constrained.iter().map(|v| v + 1).collect::<Vec<_>>()
    );
    println!(
        "target vertices      B = {:?} (paper labels {:?})\n",
        fig.targets,
        fig.targets.iter().map(|v| v + 1).collect::<Vec<_>>()
    );

    println!("forced first-port matrix (1-based port labels, rows = a_i, columns = b_j):");
    println!("{}\n", fig.matrix);

    // Every shortest-path routing function must agree with the matrix.
    for tie in [
        TieBreak::LowestPort,
        TieBreak::HighestNeighbor,
        TieBreak::Seeded(3),
    ] {
        let r = TableRouting::shortest_paths(&fig.graph, tie);
        let ok = constraints::petersen::verify_figure_against_routing(&fig, &r).is_ok();
        println!("shortest-path routing with tie-break {tie:?} obeys the matrix: {ok}");
    }

    // The reason: the Petersen graph has girth 5 and diameter 2, so every
    // ordered pair of distinct vertices has a unique shortest path.
    println!(
        "\nevery ordered pair of the Petersen graph has a unique shortest path: {}",
        constraints::petersen::all_pairs_forced()
    );

    // The same extraction works for any disjoint vertex subsets.
    let other = constraints::petersen::petersen_figure_for(&[1, 3, 8], &[0, 6, 9]).unwrap();
    println!("\na 3x3 instance on different subsets:\n{}", other.matrix);
}
