//! Quickstart: build a network, route on it, measure stretch and memory.
//!
//! Run with `cargo run --example quickstart`.

// Examples narrate their output to the console by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use universal_routing::prelude::*;

fn main() {
    // 1. A network: the Petersen graph (10 vertices, 3-regular, diameter 2).
    let g = generators::petersen();
    println!(
        "Petersen graph: {} vertices, {} edges, max degree {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );

    // 2. A universal routing scheme: full shortest-path routing tables.
    let scheme = TableScheme::default();
    let instance = scheme.build(&g);
    println!(
        "routing tables: MEM_local = {} bits, MEM_global = {} bits",
        instance.memory.local(),
        instance.memory.global()
    );

    // 3. Route a message and inspect the path it takes.
    let trace = route(&g, instance.routing.as_ref(), 0, 7).expect("routable");
    println!("route 0 -> 7: {:?} ({} hops)", trace.path, trace.len());

    // 4. The stretch factor compares every route against the distance.
    let dm = DistanceMatrix::all_pairs(&g);
    let stretch = stretch_factor(&g, &dm, instance.routing.as_ref()).expect("no routing errors");
    println!(
        "stretch factor: {:.2} (worst pair {:?}), average {:.3}",
        stretch.max_stretch, stretch.max_pair, stretch.avg_stretch
    );

    // 5. Contrast with a compact scheme: landmark routing trades stretch < 3
    //    for much smaller tables on large networks.
    let big = generators::random_connected(400, 0.02, 7);
    let tables = TableScheme::default().build(&big);
    let landmark = LandmarkScheme::default().build(&big);
    let dm_big = DistanceMatrix::all_pairs(&big);
    let s_tables = stretch_factor(&big, &dm_big, tables.routing.as_ref()).unwrap();
    let s_landmark = stretch_factor(&big, &dm_big, landmark.routing.as_ref()).unwrap();
    println!("\nrandom connected graph on {} vertices:", big.num_nodes());
    println!(
        "  routing tables : {:>8} bits/router (max), stretch {:.2}",
        tables.memory.local(),
        s_tables.max_stretch
    );
    println!(
        "  landmark scheme: {:>8} bits/router (max), stretch {:.2}",
        landmark.memory.local(),
        s_landmark.max_stretch
    );
    println!(
        "  average bits/router: tables {:.0}, landmark {:.0}",
        tables.memory.average(),
        landmark.memory.average()
    );
}
