//! Theorem 1 end to end: build a worst-case network, check the forcing
//! property, reconstruct the planted matrix by probing the constrained
//! routers, and compare the information-theoretic lower bound against the
//! routing-table upper bound.
//!
//! Run with `cargo run --release --example worst_case_family [n] [theta]`.

// Examples narrate their output to the console by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use universal_routing::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);
    let theta: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.5);

    println!("Theorem 1 worst-case family: n = {n}, theta = {theta}\n");

    // Analytic side: every term of the paper's bound.
    let report = constraints::theorem1::lower_bound(n, theta);
    println!(
        "parameters: p = {}, d = {}, q = {}",
        report.params.p, report.params.d, report.params.q
    );
    println!(
        "log2 |dM_pq|              = {:>14.1} bits (Lemma 1)",
        report.log2_classes
    );
    println!("MB  (target labels)       = {:>14.1} bits", report.mb_bits);
    println!("MC  (canonicalization)    = {:>14.1} bits", report.mc_bits);
    println!(
        "total over constrained A  = {:>14.1} bits",
        report.total_lower_bits
    );
    println!(
        "per constrained router    = {:>14.1} bits (lower bound)",
        report.per_router_lower_bits
    );
    println!(
        "routing-table upper bound = {:>14} bits per router",
        report.table_upper_bits_per_router
    );
    println!(
        "=> at least {} routers need ~{:.0}% of a full routing table each\n",
        report.guaranteed_high_memory_routers,
        100.0 * report.per_router_lower_bits / report.table_upper_bits_per_router as f64
    );

    // Constructive side: an actual member of the family.
    let (cg, params) = constraints::theorem1::build_worst_case_instance(n, theta, 2024);
    println!(
        "built instance: {} vertices, {} edges, {} constrained routers of degree {}",
        cg.graph.num_nodes(),
        cg.graph.num_edges(),
        params.p,
        params.d
    );
    println!(
        "forcing structure verified: {}",
        constraints::verify::verify_forcing_structure(&cg).is_ok()
    );

    let routing = TableRouting::shortest_paths(&cg.graph, TieBreak::Seeded(7));
    println!(
        "a shortest-path routing respects every forced port: {}",
        constraints::verify::verify_routing_respects_constraints(&cg, &routing).is_ok()
    );

    let rebuilt = constraints::reconstruct::reconstruct_matrix(&cg, &routing);
    println!(
        "probing the constrained routers reconstructs the planted matrix: {}",
        rebuilt == cg.matrix
    );

    let cost = constraints::reconstruct::describe_encoding_cost(&cg, &routing);
    println!("\ninformation accounting on this instance:");
    println!(
        "  bits held by the constrained routers (tables restricted to targets): {}",
        cost.constrained_router_bits
    );
    println!(
        "  + MB = {} bits, + MC = {} bits",
        cost.mb_bits, cost.mc_bits
    );
    println!(
        "  >= class information (Lemma 1) = {:.1} bits : {}",
        cost.class_information_bits,
        (cost.constrained_router_bits + cost.mb_bits + cost.mc_bits) as f64
            >= cost.class_information_bits
    );
}
