//! Table 1 in miniature: compare every implemented routing scheme on a set of
//! graph families, printing memory and measured stretch side by side.
//!
//! Run with `cargo run --release --example scheme_comparison [size]`.

// Examples narrate their output to the console by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use analysis::table1::{check_table1_shape, run_table1, to_table};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    println!("Scheme comparison (Table 1 reproduction) at n ≈ {size}\n");
    let entries = run_table1(size, 0xDECAF);
    println!("{}", to_table(&entries).to_plain());
    let violations = check_table1_shape(&entries);
    if violations.is_empty() {
        println!("All of the paper's qualitative separations hold on these instances.");
    } else {
        println!("Shape violations:");
        for v in violations {
            println!("  - {v}");
        }
    }
}
