//! The `routecheck` front door: static verification of routing schemes.
//!
//! ```text
//! routecheck --graph <spec> [--scheme <spec>]...
//!            [--failures kill=F&seed=S] [--repair]
//!            [--mutate <seed>] [--threads T] [--json path|-]
//! ```
//!
//! Builds each scheme from its `SchemeSpec` string on the graph of the
//! `GraphSpec` string (every applicable registry default when no `--scheme`
//! is given) and statically verifies it: structural table audits plus the
//! all-pairs `(source, dest)` sweep classifying every pair as proven /
//! livelock / dead-port / header-overflow / wrong-delivery / unreachable.
//! No traffic is simulated — the sweep walks the routing function's state
//! chains directly.
//!
//! `--failures kill=0.1&seed=7` verifies against the failure-masked view
//! (schemes are still built on the pristine graph); `--repair` additionally
//! runs each scheme's incremental repair against the failure set first, so
//! CI can prove repaired-after-churn instances sound.  `--mutate <seed>`
//! flips the gate around: each instance is corrupted by the mutation
//! harness and the run fails unless the checker flags every mutant.
//!
//! Exit status is non-zero when any scheme is unsound (or, under
//! `--mutate`, when any corruption goes undetected), so CI gates directly
//! on this binary.

// Binaries are the console front door; printing is their contract.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use graphkit::FailureSet;
use routeschemes::spec::{vocabulary, SchemeSpec};
use routeschemes::{applicable_schemes, corrupt_instance, MutationKind};
use std::process::ExitCode;
use trafficlab::GraphSpec;

fn usage() {
    eprintln!(
        "usage: routecheck --graph <spec> [--scheme <spec>]... \
         [--failures kill=F&seed=S] [--repair] \
         [--mutate <seed>] [--threads T] [--json path|-]"
    );
    eprintln!("spec vocabularies:");
    eprintln!("{}", vocabulary());
    eprintln!("{}", GraphSpec::vocabulary());
}

struct Args {
    graph: String,
    schemes: Vec<String>,
    failures: Option<String>,
    repair: bool,
    mutate: Option<u64>,
    threads: usize,
    json: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        schemes: Vec::new(),
        failures: None,
        repair: false,
        mutate: None,
        threads: 0,
        json: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs an argument"))
        };
        match flag {
            "--graph" => args.graph = value()?,
            "--scheme" => args.schemes.push(value()?),
            "--failures" => args.failures = Some(value()?),
            "--json" => args.json = Some(value()?),
            "--repair" => args.repair = true,
            "--mutate" => {
                args.mutate = Some(
                    value()?
                        .parse()
                        .map_err(|_| "--mutate needs an integer seed".to_string())?,
                );
            }
            "--threads" => {
                args.threads = value()?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    if args.graph.is_empty() {
        return Err("--graph is required".to_string());
    }
    if args.repair && args.failures.is_none() {
        return Err("--repair needs --failures to repair against".to_string());
    }
    if args.mutate.is_some() && (args.repair || args.failures.is_some()) {
        return Err("--mutate verifies pristine instances; drop --failures/--repair".to_string());
    }
    Ok(args)
}

/// Parses the `kill=F&seed=S` failure spec (seed defaults to 0).
fn parse_failures(spec: &str) -> Result<(f64, u64), String> {
    let mut kill: Option<f64> = None;
    let mut seed: u64 = 0;
    for part in spec.split('&') {
        let Some((key, value)) = part.split_once('=') else {
            return Err(format!("'{part}' is not a key=value pair"));
        };
        match key {
            "kill" => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("bad value '{value}' for 'kill'"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("'kill' must be in [0, 1], got {v}"));
                }
                kill = Some(v);
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad value '{value}' for 'seed'"))?;
            }
            other => return Err(format!("unknown failure key '{other}' (valid: kill, seed)")),
        }
    }
    let kill = kill.ok_or_else(|| "missing required key 'kill'".to_string())?;
    Ok((kill, seed))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let graph_spec = match GraphSpec::parse(&args.graph) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--graph: {e}");
            eprintln!("{}", GraphSpec::vocabulary());
            return ExitCode::FAILURE;
        }
    };
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        args.threads
    };

    let built = graph_spec.build();
    let g = &built.graph;

    // The scheme list: explicit specs, or every applicable registry default.
    let mut instances = Vec::new();
    if args.schemes.is_empty() {
        for (spec, inst) in applicable_schemes(g, &built.hints) {
            instances.push((spec.spec_string(), inst));
        }
        if instances.is_empty() {
            eprintln!("no registry scheme applies to {}", args.graph);
            return ExitCode::FAILURE;
        }
    } else {
        for raw in &args.schemes {
            let spec = match SchemeSpec::parse(raw) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("--scheme: {e}");
                    eprintln!("{}", vocabulary());
                    return ExitCode::FAILURE;
                }
            };
            match spec.build(g, &built.hints) {
                Ok(inst) => instances.push((spec.spec_string(), inst)),
                Err(e) => {
                    eprintln!("cannot build {} on {}: {e}", spec.spec_string(), args.graph);
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let failures = match &args.failures {
        None => None,
        Some(spec) => match parse_failures(spec) {
            Ok((kill, seed)) => Some(FailureSet::sample(g, kill, seed)),
            Err(e) => {
                eprintln!("--failures: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // Mutation mode: corrupt each instance, then demand the checker notices.
    if let Some(seed) = args.mutate {
        let mut undetected = 0usize;
        for (label, inst) in instances.iter_mut() {
            for kind in [MutationKind::Misroute, MutationKind::OutOfRange] {
                let mut victim = std::mem::replace(
                    inst,
                    match SchemeSpec::parse(label).unwrap().build(g, &built.hints) {
                        Ok(fresh) => fresh,
                        Err(e) => {
                            eprintln!("rebuild of {label} failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                );
                let mutation = match corrupt_instance(&mut victim, g, seed, kind) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("{label}: cannot corrupt: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let report = routecheck::verify_instance(g, None, &victim, label, threads);
                let caught = report.verdict == routecheck::Verdict::Unsound;
                println!(
                    "{label}: {:?} corruption of the {} -> {}{}",
                    kind,
                    mutation.description,
                    if caught { "CAUGHT" } else { "MISSED" },
                    report
                        .failure_note()
                        .map(|w| format!(" ({w})"))
                        .unwrap_or_default()
                );
                if !caught {
                    undetected += 1;
                }
            }
        }
        if undetected > 0 {
            eprintln!("FAILURE: {undetected} seeded corruption(s) went undetected");
            return ExitCode::FAILURE;
        }
        println!("every seeded corruption was flagged");
        return ExitCode::SUCCESS;
    }

    // Optional incremental repair before checking: prove the *repaired*
    // instance sound against the failed view, like the churn pipeline does.
    if args.repair {
        let failure_set = failures.as_ref().expect("checked in parse_args");
        for (label, inst) in instances.iter_mut() {
            match inst.repair(g, failure_set) {
                Ok(stats) => eprintln!(
                    "{label}: repaired ({} routers touched, {:.3}s)",
                    stats.vertices_touched, stats.seconds
                ),
                Err(e) => {
                    eprintln!("{label}: repair unavailable ({e}); checking as-built");
                }
            }
        }
    }

    let soundness = routecheck::Soundness {
        graph: args.graph.clone(),
        n: g.num_nodes(),
        edges: g.num_edges(),
        failures: args.failures.clone(),
        schemes: instances
            .iter()
            .map(|(label, inst)| {
                routecheck::verify_instance(g, failures.as_ref(), inst, label, threads)
            })
            .collect(),
    };

    let table = soundness.to_table().to_plain();
    let json_to_stdout = args.json.as_deref() == Some("-");
    if json_to_stdout {
        eprintln!("{table}");
    } else {
        println!("{table}");
    }
    if let Some(path) = &args.json {
        let json = soundness.to_json();
        if json_to_stdout {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("report written to {path}");
        }
    }

    if soundness.all_sound() {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILURE: unsound scheme(s) detected");
        ExitCode::FAILURE
    }
}
