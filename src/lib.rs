//! # universal-routing
//!
//! A reproduction, as a Rust workspace, of
//!
//! > Pierre Fraigniaud and Cyril Gavoille,
//! > *Local Memory Requirement of Universal Routing Schemes*, SPAA 1996.
//!
//! The paper studies how many bits a router must store locally for universal
//! routing schemes whose routes are at most `s` times longer than shortest
//! paths.  Its main theorem: for every stretch factor `s < 2`, every constant
//! `0 < θ < 1` and every large enough `n`, some `n`-node network has
//! `Θ(n^θ)` routers that each need `Ω(n log n)` bits — i.e. routing tables
//! cannot be compressed asymptotically, even if routes may be up to twice as
//! long as shortest paths.
//!
//! This facade crate re-exports the member crates:
//!
//! * [`graphkit`] — the network substrate (symmetric digraphs with locally
//!   labeled ports, generators, BFS/APSP);
//! * [`routemodel`] — the routing model `R = (I, H, P)`, stretch factors and
//!   memory accounting;
//! * [`routeschemes`] — the upper-bound side: routing tables, interval
//!   routing, e-cube, dimension-order, complete-graph labelings, landmark
//!   routing, spanning-tree routing;
//! * [`constraints`] — the paper's contribution: matrices and graphs of
//!   constraints, the counting bound, Theorem 1 and the reconstruction
//!   argument;
//! * [`analysis`] — the experiment harness that regenerates every table and
//!   figure;
//! * [`trafficlab`] — the sharded routing-workload engine: traffic scenarios
//!   (uniform, Zipf, permutations, broadcast, adversarial bisection and
//!   worst-permutation patterns, Theorem 1 probes) driven over the scheme
//!   registry with block-streamed stretch/congestion evaluation that never
//!   materializes a dense `n²` distance matrix.  Scenarios are declarative
//!   ([`trafficlab::ScenarioSpec`]): graph × workload × scheme specs, every
//!   axis a `speclang` string codec, loadable from TOML scenario files.
//!
//! ## Quick start
//!
//! ```
//! use universal_routing::prelude::*;
//!
//! // A worst-case network of the Theorem 1 family with 256 vertices.
//! let (cg, params) = constraints::theorem1::build_worst_case_instance(256, 0.5, 42);
//! assert_eq!(cg.graph.num_nodes(), 256);
//!
//! // Any shortest-path routing function is forced to follow the planted
//! // matrix of constraints on every (constrained, target) pair.
//! let routing = TableRouting::shortest_paths(&cg.graph, TieBreak::LowestNeighbor);
//! assert!(constraints::verify::verify_routing_respects_constraints(&cg, &routing).is_ok());
//!
//! // ... and probing those routers reconstructs the matrix, which is why they
//! // must jointly store log2 |dM_pq| bits (Theorem 1).
//! let rebuilt = constraints::reconstruct::reconstruct_matrix(&cg, &routing);
//! assert_eq!(rebuilt, cg.matrix);
//! assert_eq!(params.p, cg.constrained.len());
//! ```

#![forbid(unsafe_code)]

pub use analysis;
pub use constraints;
pub use graphkit;
pub use routemodel;
pub use routeschemes;
pub use trafficlab;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use analysis;
    pub use constraints;
    pub use constraints::{ConstraintGraph, ConstraintMatrix};
    pub use graphkit::{generators, DistanceBlock, DistanceMatrix, Graph, NodeId, Port};
    pub use routemodel::{
        route, stretch_factor, Action, Header, MemoryReport, RoutingFunction, TableRouting,
        TieBreak,
    };
    pub use routeschemes::{
        BuildError, ClusterRule, CompactScheme, EcubeScheme, GraphHints, KIntervalConfig,
        KIntervalScheme, LandmarkConfig, LandmarkCount, LandmarkScheme, SchemeInstance, SchemeKind,
        SchemeSpec, SpecError, TableScheme, TreeIntervalScheme,
    };
    pub use speclang;
    pub use trafficlab::{
        run_workload, EngineConfig, GraphSpec, ScenarioSpec, Workload, WorkloadSpec,
    };
}
